//! The scenario engine.
//!
//! Wires every substrate together and runs the paper's experiment loop:
//! one epoch = one LMAC frame; each epoch the world advances, nodes sample
//! their sensors (DirQ), the root injects calibrated queries every
//! `query_period` epochs, the MAC carries the traffic, and the metrics
//! collector scores each query against its injection-time ground truth.
//!
//! The engine deliberately keeps two views apart:
//!
//! * **protocol state** — what nodes actually know (parents, children,
//!   range tables, MAC neighbour tables). All protocol behaviour, including
//!   tree repair after deaths, uses only this.
//! * **oracle state** — the generator's world readings and liveness flags,
//!   used solely for ground truth and measurement.

use dirq_data::sensor::SensorAssignment;
use dirq_data::workload::CalibratedQuery;
use dirq_data::{QueryGenerator, QueryId, SensorCatalog, SensorWorld, WorldConfig};
use dirq_lmac::network::MacStats;
use dirq_lmac::{Destination, LmacConfig, LmacNetwork, MacIndication, PayloadHandle};
use dirq_net::churn::ChurnPlan;
use dirq_net::placement::{Placement, SinkPlacement};
use dirq_net::radio::{LogDistance, UnitDisk};
use dirq_net::{NodeId, SpanningTree, Topology};
use dirq_sim::runner::WorkerPool;
use dirq_sim::stats::Ewma;
use dirq_sim::{RngFactory, SimRng, SnapError, SnapReader, SnapWriter};

use dirq_analytic::TopologyCosts;

use crate::atc::DeltaPolicy;
use crate::flooding::FloodingNode;
use crate::messages::{DirqMessage, EhrMessage, MessageCategory};
use crate::metrics::{Metrics, QueryOutcome};
use crate::node::{DirqNode, NodeConfig, Outgoing};
use crate::pending::{PendingQuery, PendingSet};
use crate::sampling::{Sampler, SamplingStrategy};

/// Which dissemination protocol a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Directed query dissemination (the paper's contribution).
    Dirq,
    /// The flooding baseline of Section 5.1.
    Flooding,
}

/// How the spanning tree is built at deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    /// Shortest-hop BFS tree.
    Bfs,
    /// Randomised tree bounded by fan-out `k` and depth `d` (the paper's
    /// evaluation network: 50 nodes, k = 8, d = 10).
    BoundedRandom {
        /// Maximum fan-out.
        k: usize,
        /// Maximum depth.
        d: u32,
    },
    /// Exact complete k-ary tree with the tree edges as the radio graph
    /// (for validating the Section 5 analytic model). Overrides `n_nodes`.
    CompleteKary {
        /// Arity.
        k: usize,
        /// Depth.
        d: u32,
    },
}

/// Radio connectivity model of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RadioSpec {
    /// Binary unit disk at [`ScenarioConfig::radio_range`] metres (the
    /// paper's model).
    UnitDisk,
    /// Log-distance path loss with deterministic per-link shadowing
    /// ([`dirq_net::radio::LogDistance`]): fixed hardware link budget, so
    /// raising the exponent *shrinks* the usable range — the lossy-radio
    /// axis the unit disk cannot express. The shadowing seed derives from
    /// the scenario seed.
    LogDistance {
        /// Path-loss exponent γ (2 = free space, 3–4 = forest/urban).
        exponent: f64,
        /// Shadowing standard deviation σ, dB (0 disables shadowing).
        shadowing_sigma_db: f64,
        /// Link budget in dB over the 1 m reference: the mean range is
        /// `10^(budget / (10 γ))` metres.
        link_budget_db: f64,
    },
}

/// Scripted churn for a scenario.
#[derive(Clone, Debug)]
pub enum ChurnSpec {
    /// Fixed topology.
    None,
    /// Kill `deaths` random non-root nodes at uniform epochs in
    /// `[from_epoch, until_epoch)`.
    RandomDeaths {
        /// Number of victims.
        deaths: usize,
        /// Window start epoch.
        from_epoch: u64,
        /// Window end epoch (exclusive).
        until_epoch: u64,
    },
    /// An explicit plan.
    Explicit(ChurnPlan),
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; every stream derives from it.
    pub seed: u64,
    /// Number of nodes (including the root). Ignored for
    /// [`TreeKind::CompleteKary`].
    pub n_nodes: usize,
    /// Deployment square side, metres.
    pub side: f64,
    /// Node layout. `None` = uniform random in the `side × side` square
    /// (the paper's deployment); scenario presets override this with
    /// grids, corridors or clustered layouts.
    pub placement: Option<Placement>,
    /// Where the sink (node 0) is pinned.
    pub sink: SinkPlacement,
    /// Secondary sinks (nodes `1..=extra_sinks`): repositioned onto
    /// deterministic spread sites and wired to the primary sink by
    /// backbone links (a sink backhaul). The spanning tree then attaches
    /// every node under its **nearest** sink, cutting route depth; the
    /// secondary sinks otherwise behave as ordinary sensing relays.
    /// `0` (the default) is the paper's single-sink deployment.
    pub extra_sinks: usize,
    /// Radio range, metres (unit-disk model; under
    /// [`RadioSpec::LogDistance`] the range follows from the link budget
    /// instead).
    pub radio_range: f64,
    /// Radio connectivity model.
    pub radio: RadioSpec,
    /// Run length in epochs (the paper: 20 000).
    pub epochs: u64,
    /// Queries fire every this many epochs (the paper: 20).
    pub query_period: u64,
    /// Target involved-node fraction (the paper: 0.2 / 0.4 / 0.6).
    pub target_fraction: f64,
    /// Fraction of sensing nodes carrying each sensor type.
    pub sensor_coverage: f64,
    /// Threshold policy.
    pub delta_policy: DeltaPolicy,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Epochs per "hour" (EHr period).
    pub hour_epochs: u64,
    /// Spanning-tree construction.
    pub tree: TreeKind,
    /// MAC parameters.
    pub lmac: LmacConfig,
    /// Topology churn.
    pub churn: ChurnSpec,
    /// Synthetic-world parameters (defaults to the 4-type environmental
    /// scenario when `None`).
    pub world: Option<WorldConfig>,
    /// Worker threads for the per-epoch world advance (split per-node RNG
    /// streams shard over node ranges). Like `lmac.workers`, never affects
    /// results — the sharded advance is bit-identical at any count.
    pub world_workers: usize,
    /// Worker threads for protocol-plane indication dispatch between MAC
    /// slots (listener-aligned chunks over a worker pool, with the shared
    /// effects replayed in slot order). Like `lmac.workers`, never affects
    /// results — the sharded dispatch is bit-identical at any count.
    pub dispatch_workers: usize,
    /// Worker threads for the per-node protocol-upkeep passes (sensor
    /// sampling and tree-repair scans shard over contiguous node ranges,
    /// with the shared-state mutations replayed in chunk order). Like
    /// `lmac.workers`, never affects results — the sharded upkeep is
    /// bit-identical at any count.
    pub upkeep_workers: usize,
    /// Epochs to wait after injection before scoring a query.
    pub completion_window: u64,
    /// Warm-up epochs excluded from aggregate statistics.
    pub measure_from_epoch: u64,
    /// ATC cost target as a fraction of flooding cost (the paper's band is
    /// 45–55 %, centred at 0.5).
    pub atc_band_center: f64,
    /// Sensor acquisition strategy (the paper assumes every epoch; the
    /// predictive variant implements its Section 8 future work).
    pub sampling: SamplingStrategy,
    /// Location extension: when true, nodes know their own positions and
    /// advertise subtree bounding boxes (the paper's optional *static
    /// location attribute*).
    pub location_enabled: bool,
    /// Fraction of generated queries that are spatially scoped (requires
    /// `location_enabled`).
    pub spatial_query_fraction: f64,
    /// Multiplier on δ for the Fig. 3 transmission test (1.0 = paper rule;
    /// 0.0 = transmit every aggregate change — see the `ablations` binary).
    pub tx_threshold_factor: f64,
}

impl ScenarioConfig {
    /// The paper's evaluation setup: 50 nodes, 20 000 epochs, queries every
    /// 20 epochs, 4 sensor types, bounded tree (k = 8, d = 10).
    pub fn paper(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            n_nodes: 50,
            side: 100.0,
            placement: None,
            sink: SinkPlacement::Corner,
            extra_sinks: 0,
            radio_range: 28.0,
            radio: RadioSpec::UnitDisk,
            epochs: 20_000,
            query_period: 20,
            target_fraction: 0.4,
            sensor_coverage: 0.8,
            delta_policy: DeltaPolicy::Fixed(5.0),
            protocol: Protocol::Dirq,
            hour_epochs: 400,
            tree: TreeKind::BoundedRandom { k: 8, d: 10 },
            lmac: LmacConfig::default(),
            churn: ChurnSpec::None,
            world: None,
            world_workers: 1,
            dispatch_workers: 1,
            upkeep_workers: 1,
            completion_window: 16,
            measure_from_epoch: 400,
            atc_band_center: 0.5,
            sampling: SamplingStrategy::EveryEpoch,
            location_enabled: false,
            spatial_query_fraction: 0.0,
            tx_threshold_factor: 1.0,
        }
    }

    /// A scaled-down variant for tests (2 000 epochs).
    pub fn paper_small(seed: u64) -> Self {
        ScenarioConfig { epochs: 2_000, measure_from_epoch: 200, ..ScenarioConfig::paper(seed) }
    }
}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// All collected metrics.
    pub metrics: Metrics,
    /// Nodes in the deployment.
    pub n_nodes: usize,
    /// Epochs simulated.
    pub epochs: u64,
    /// Analytic costs of the initial deployment.
    pub analytic: TopologyCosts,
    /// `Umax/hr` — the Fig. 6 reference line: `fMax × (N−1) × queries/hr`.
    pub u_max_per_hour: f64,
    /// Epochs per hour used in the run.
    pub hour_epochs: u64,
    /// Queries injected.
    pub queries_injected: usize,
    /// MAC-level statistics.
    pub mac_stats: MacStats,
    /// MAC data-ledger total (cross-check of the category tallies).
    pub mac_data_cost: f64,
    /// MAC control-ledger total (LMAC overhead, excluded from comparisons).
    pub mac_control_cost: f64,
    /// Final δ (percent) per node.
    pub final_delta_pcts: Vec<f64>,
    /// Mean δ (percent) over sensing nodes, sampled every 100 epochs.
    pub delta_trace: Vec<(u64, f64)>,
    /// Sensor acquisitions performed (Section 8 extension accounting).
    pub samples_taken: u64,
    /// Sensor acquisitions avoided by the predictive sampler.
    pub samples_skipped: u64,
    /// Ground-truth evaluations spent on query-window calibration (the
    /// warm-start optimisation drives this down; see `dirq_data::workload`).
    pub calibration_probes: u64,
}

impl RunResult {
    /// Measured DirQ cost per query over the measurement window.
    pub fn cost_per_query(&self) -> Option<f64> {
        let q = self.metrics.measured_queries();
        (q > 0).then(|| self.metrics.total_cost() / q as f64)
    }

    /// Analytic flooding cost per query on the initial deployment (Eq. 3).
    pub fn flooding_cost_per_query(&self) -> f64 {
        self.analytic.flooding
    }

    /// Measured cost relative to analytic flooding — the paper's headline
    /// "DirQ spends between 45 % and 55 % the cost of flooding".
    pub fn cost_ratio_vs_flooding(&self) -> Option<f64> {
        self.cost_per_query().map(|c| c / self.flooding_cost_per_query())
    }

    /// Mean overshoot over the measurement window (Fig. 7's average).
    pub fn mean_overshoot_pct(&self) -> f64 {
        self.metrics.overshoot.mean()
    }

    /// Order-sensitive fingerprint over every deterministic observable of
    /// the run: metrics, MAC statistics, energy ledgers and the δ traces.
    /// Equal seeds and equal code must yield equal fingerprints — the
    /// golden determinism test pins this across hot-path refactors.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut h = crate::metrics::Fnv::new();
        h.u64(self.metrics.stable_fingerprint());
        h.u64(self.n_nodes as u64);
        h.u64(self.epochs);
        h.u64(self.queries_injected as u64);
        h.u64(self.mac_stats.delivered);
        h.u64(self.mac_stats.undeliverable);
        h.u64(self.mac_stats.collisions);
        h.u64(self.mac_stats.slots_surrendered);
        h.u64(self.mac_stats.slots_picked);
        h.u64(self.mac_stats.no_free_slot);
        h.u64(self.mac_stats.deaths_detected);
        h.u64(self.mac_stats.new_neighbors_detected);
        h.f64(self.mac_data_cost);
        h.f64(self.mac_control_cost);
        h.f64(self.u_max_per_hour);
        for &d in &self.final_delta_pcts {
            h.f64(d);
        }
        for &(e, d) in &self.delta_trace {
            h.u64(e);
            h.f64(d);
        }
        h.u64(self.samples_taken);
        h.u64(self.samples_skipped);
        h.u64(self.calibration_probes);
        h.finish()
    }
}

/// Wall-clock split of a run across the engine's per-epoch phases,
/// collected when [`Engine::enable_phase_timing`] is on (the
/// `dispatch_probe` bin reports it). Purely observational — timing never
/// feeds back into the simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Seconds advancing the synthetic world.
    pub world: f64,
    /// Seconds applying scripted churn events.
    pub churn: f64,
    /// Seconds in tree repair: attachment recompute, orphan adoption and
    /// the detach fallback.
    pub repair: f64,
    /// Seconds computing and flooding the hourly `EHr` budget.
    pub ehr: f64,
    /// Seconds in sensor sampling: the adaptive gate, world reads and the
    /// resulting Update flow.
    pub sampling: f64,
    /// Seconds generating, calibrating and injecting queries.
    pub injection: f64,
    /// Seconds advancing MAC slots.
    pub mac: f64,
    /// Seconds dispatching MAC indications to the protocol handlers.
    pub dispatch: f64,
    /// Seconds in end-of-epoch housekeeping, including query finalisation.
    pub finalize: f64,
}

impl PhaseTimings {
    /// Total protocol-plane upkeep — the sum of the churn, repair, EHr,
    /// sampling and injection sub-phases (the single `protocol` bucket
    /// before the split).
    pub fn protocol(&self) -> f64 {
        self.churn + self.repair + self.ehr + self.sampling + self.injection
    }
}

/// The simulation engine.
pub struct Engine {
    cfg: ScenarioConfig,
    topo: Topology,
    mac: LmacNetwork<DirqMessage>,
    world: SensorWorld,
    nodes: Vec<DirqNode>,
    flood: Vec<FloodingNode>,
    alive: Vec<bool>,
    qgen: QueryGenerator,
    churn: ChurnPlan,
    pending: PendingSet,
    metrics: Metrics,
    epoch: u64,
    mac_rng: SimRng,
    /// Root-side EWMA of measured per-query dissemination cost (drives the
    /// ATC budget).
    cqd_estimate: Ewma,
    /// Root-side integral correction on the disseminated budget: if the
    /// realized update traffic overshoots the desired level, hand out a
    /// tighter budget next hour (and vice versa).
    budget_multiplier: f64,
    /// Update transmissions counted at the previous EHr broadcast.
    updates_at_last_ehr: f64,
    /// Epoch at which each node lost its path to the root (`None` =
    /// currently attached); drives the repair fallback.
    detached_since: Vec<Option<u64>>,
    /// Predictive samplers per (node, sensor type); `None` under
    /// [`SamplingStrategy::EveryEpoch`].
    samplers: Option<Vec<Vec<Sampler>>>,
    /// Scratch: per-node depth in the protocol tree (`None` = detached),
    /// recomputed in place by [`Engine::compute_attachment`].
    attach_depth: Vec<Option<u32>>,
    /// Scratch: BFS worklist for [`Engine::compute_attachment`].
    attach_queue: Vec<NodeId>,
    /// Reusable MAC indication buffer for [`Engine::run_mac_frame`].
    ind_buf: Vec<MacIndication<DirqMessage>>,
    /// Scratch: queries due for finalisation this epoch.
    finalize_buf: Vec<PendingQuery>,
    /// Scratch: true-source membership bits for [`Engine::finalize_query`]
    /// (set and cleared per query).
    source_mark: Vec<bool>,
    /// Worker pool for sharded indication dispatch (`None` = serial; the
    /// `dispatch_workers` knob resolves here against the host parallelism
    /// and a node-count floor).
    dispatch_pool: Option<WorkerPool>,
    /// Per-worker effect buffers for sharded dispatch; empty when serial.
    dispatch_shards: Vec<DispatchShard>,
    /// Scratch: listener-aligned `[start, end)` chunk bounds per worker.
    dispatch_chunks: Vec<(u32, u32)>,
    /// Test hook: shard every slot regardless of the size thresholds.
    force_sharded: bool,
    /// Worker pool for the sharded protocol-upkeep passes (sampling and
    /// repair scans); `None` = serial. Resolved from the `upkeep_workers`
    /// knob like `dispatch_pool`.
    upkeep_pool: Option<WorkerPool>,
    /// Per-worker decision/effect buffers for sharded upkeep; empty when
    /// serial.
    upkeep_shards: Vec<UpkeepShard>,
    /// Scratch: `[start, end)` chunk bounds per upkeep worker.
    upkeep_chunks: Vec<(u32, u32)>,
    /// Test hook: shard the upkeep passes regardless of size thresholds.
    force_upkeep: bool,
    /// Scratch: churn events due this epoch (reused across epochs).
    churn_buf: Vec<dirq_net::churn::ChurnEvent>,
    /// Scratch: per-orphan `(gateway_dist, neighbour)` candidates for the
    /// serial repair path (reused across orphans and epochs).
    repair_candidates: Vec<(u16, NodeId)>,
    /// Scratch: pre-pass parent snapshot for the sharded repair scan.
    parent_snapshot: Vec<Option<NodeId>>,
    /// Carrier index over the sensor assignment (see [`SampleIndex`]).
    sample_index: SampleIndex,
    /// Per-phase wall-clock accumulators (`None` = timing off).
    timing: Option<Box<PhaseTimings>>,
    u_max_per_hour: f64,
    analytic0: TopologyCosts,
    delta_trace: Vec<(u64, f64)>,
    queries_injected: usize,
    /// Finalised-query log for external consumers (the daemon); `None`
    /// until [`Engine::enable_completed_log`]. Transient — never
    /// snapshotted; cursor-addressed so several consumers can read it
    /// independently (see [`Engine::completed_since`]).
    completed: Option<CompletedLog>,
}

/// A finalised query as reported to external consumers: the scored
/// outcome plus the measured dissemination cost attributed to it.
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    /// The scored outcome (same record the metrics collector keeps).
    pub outcome: QueryOutcome,
    /// The epoch during which the query finalised (`outcome.epoch` is the
    /// injection epoch, so `answered_epoch - outcome.epoch` is the
    /// epochs-to-answer latency).
    pub answered_epoch: u64,
    /// Transmissions attributed to this query while it was in flight.
    pub tx: u64,
    /// Receptions attributed to this query while it was in flight.
    pub rx: u64,
}

/// Retention bound for the completed-query log: beyond this many
/// undrained entries the oldest are discarded (their sequence numbers
/// stay burnt, so cursors remain monotone).
pub const COMPLETED_LOG_CAP: usize = 65_536;

/// Bounded completed-query log addressed by monotone sequence numbers:
/// entry `i` of `entries` has sequence `first_seq + i`.
#[derive(Default)]
struct CompletedLog {
    entries: std::collections::VecDeque<CompletedQuery>,
    first_seq: u64,
}

impl CompletedLog {
    fn push(&mut self, entry: CompletedQuery) {
        if self.entries.len() == COMPLETED_LOG_CAP {
            self.entries.pop_front();
            self.first_seq += 1;
        }
        self.entries.push_back(entry);
    }

    fn next_seq(&self) -> u64 {
        self.first_seq + self.entries.len() as u64
    }
}

/// Borrow target for [`Engine::completed_since`] when the log is off.
static EMPTY_COMPLETED: std::collections::VecDeque<CompletedQuery> =
    std::collections::VecDeque::new();

impl Engine {
    /// Build a fully initialised engine (topology deployed, tree built,
    /// MAC converged, world at epoch 0).
    pub fn new(cfg: ScenarioConfig) -> Self {
        let factory = RngFactory::new(cfg.seed);

        // --- topology + initial tree ---------------------------------------
        let (topo, mut tree_opt) = match cfg.tree {
            TreeKind::CompleteKary { k, d } => {
                assert_eq!(
                    cfg.extra_sinks, 0,
                    "CompleteKary trees ignore placement; extra sinks are unsupported"
                );
                let (topo, tree) = SpanningTree::complete_kary(k, d);
                (topo, Some(tree))
            }
            _ => {
                let mut rng = factory.stream("deploy");
                let placement =
                    cfg.placement.clone().unwrap_or(Placement::UniformRandom { side: cfg.side });
                // Single- and multi-sink deployments share the retry loop;
                // multi-sink pins nodes 1..=extra_sinks on spread sites and
                // wires them to the root (see `ScenarioConfig::extra_sinks`).
                fn deploy<R: dirq_net::radio::RadioModel>(
                    cfg: &ScenarioConfig,
                    placement: &Placement,
                    radio: &R,
                    rng: &mut SimRng,
                ) -> Option<Topology> {
                    if cfg.extra_sinks == 0 {
                        Topology::deploy_connected(
                            cfg.n_nodes,
                            placement,
                            cfg.sink,
                            radio,
                            rng,
                            500,
                        )
                    } else {
                        Topology::deploy_connected_multi_sink(
                            cfg.n_nodes,
                            placement,
                            cfg.sink,
                            radio,
                            rng,
                            500,
                            cfg.extra_sinks,
                        )
                    }
                }
                let topo = match cfg.radio {
                    RadioSpec::UnitDisk => {
                        deploy(&cfg, &placement, &UnitDisk::new(cfg.radio_range), &mut rng)
                    }
                    RadioSpec::LogDistance { exponent, shadowing_sigma_db, link_budget_db } => {
                        // A fixed budget over the 1 m reference: the mean
                        // range is 10^(budget/(10 γ)) m, shrinking as the
                        // environment's exponent grows.
                        let model = LogDistance {
                            tx_power_dbm: 0.0,
                            ref_loss_db: 0.0,
                            ref_distance: 1.0,
                            exponent,
                            sensitivity_dbm: -link_budget_db,
                            shadowing_sigma_db,
                            shadow_seed: cfg.seed,
                        };
                        deploy(&cfg, &placement, &model, &mut rng)
                    }
                }
                .expect("no connected deployment found; raise density or radio range");
                (topo, None)
            }
        };
        let n = topo.len();

        // --- churn ----------------------------------------------------------
        let churn = match &cfg.churn {
            ChurnSpec::None => ChurnPlan::none(),
            ChurnSpec::RandomDeaths { deaths, from_epoch, until_epoch } => {
                // Victim sets that sever the sink from the network are
                // rejected: a partitioned sink reaches no source under any
                // scheme, so there is nothing left to measure.
                ChurnPlan::random_deaths_connected(
                    n,
                    *deaths,
                    *from_epoch,
                    *until_epoch,
                    &mut factory.stream("churn"),
                    |victims| {
                        let mut dead = vec![false; n];
                        for &v in victims {
                            dead[v.index()] = true;
                        }
                        let reach = topo.reachable_from(NodeId::ROOT, |v| !dead[v.index()]);
                        topo.nodes().all(|v| dead[v.index()] || reach[v.index()])
                    },
                )
            }
            ChurnSpec::Explicit(plan) => plan.clone(),
        };
        let mut alive = vec![true; n];
        for node in churn.initially_offline() {
            alive[node.index()] = false;
        }

        // --- spanning tree over the initially alive nodes --------------------
        let tree = match (&mut tree_opt, cfg.tree) {
            (Some(t), _) => std::mem::replace(t, SpanningTree::new(1, NodeId::ROOT)),
            (None, TreeKind::Bfs) => {
                SpanningTree::bfs_filtered(&topo, NodeId::ROOT, |v| alive[v.index()])
            }
            (None, TreeKind::BoundedRandom { k, d }) => {
                let mut rng = factory.stream("tree");
                let mut built = None;
                for _ in 0..100 {
                    if let Some(t) =
                        SpanningTree::bounded_random(&topo, NodeId::ROOT, k, d, &mut rng)
                    {
                        built = Some(t);
                        break;
                    }
                }
                let mut t = built.unwrap_or_else(|| {
                    panic!("bounded_random(k={k}, d={d}) failed 100 times on this topology")
                });
                // Detach initially-offline nodes (and their subtrees — the
                // orphans re-attach through the repair path once alive
                // neighbours exist; for simplicity offline nodes are only
                // supported as leaves here).
                for node in churn.initially_offline() {
                    if t.is_attached(node) {
                        t.detach_subtree(node);
                    }
                }
                t
            }
            (None, TreeKind::CompleteKary { .. }) => unreachable!(),
        };

        // --- MAC --------------------------------------------------------------
        let mut mac = LmacNetwork::new(cfg.lmac, topo.clone());
        for (i, &node_alive) in alive.iter().enumerate() {
            if !node_alive {
                mac.set_alive(NodeId::from_index(i), false);
            }
        }
        mac.assign_slots_greedy();

        // --- world + workload --------------------------------------------------
        let world_cfg = cfg.world.clone().unwrap_or_else(|| WorldConfig::environmental(cfg.side));
        let catalog = SensorCatalog::environmental();
        assert_eq!(
            world_cfg.types.len(),
            catalog.len(),
            "custom WorldConfig must cover the 4 environmental types"
        );
        let assignment = SensorAssignment::heterogeneous(
            n,
            catalog.len(),
            cfg.sensor_coverage,
            &mut factory.stream("assignment"),
        );
        let mut world = SensorWorld::new(&world_cfg, catalog, assignment, &topo, &factory);
        world.set_workers(cfg.world_workers.max(1));
        assert!(
            cfg.spatial_query_fraction == 0.0 || cfg.location_enabled,
            "spatial queries require location_enabled"
        );
        let qgen =
            QueryGenerator::new(cfg.target_fraction, cfg.query_period, factory.stream("workload"))
                .with_spatial_fraction(cfg.spatial_query_fraction);

        // --- protocol nodes ------------------------------------------------------
        let node_cfg = NodeConfig {
            delta_policy: cfg.delta_policy,
            reference_spans: world_cfg.reference_spans(),
            variability_alpha: 0.2,
            tx_threshold_factor: cfg.tx_threshold_factor,
        };
        let mut nodes: Vec<DirqNode> =
            (0..n).map(|i| DirqNode::new(NodeId::from_index(i), node_cfg.clone())).collect();
        // Quiet tree initialisation: both endpoints already agree, so the
        // Attach handshakes are skipped.
        for (i, node) in nodes.iter_mut().enumerate() {
            let id = NodeId::from_index(i);
            if let Some(p) = tree.parent(id) {
                let _ = node.set_parent(Some(p));
            }
            for &c in tree.children(id) {
                node.add_child(c);
            }
        }

        let analytic0 = TopologyCosts::compute(&topo, &tree);
        let queries_per_hour = cfg.hour_epochs as f64 / cfg.query_period as f64;
        let u_max_per_hour = analytic0
            .f_max()
            .map(|f| f * (analytic0.n.saturating_sub(1)) as f64 * queries_per_hour)
            .unwrap_or(0.0);

        // Sharded dispatch engages only when the knob asks for several
        // workers, the deployment is big enough to feed them and the host
        // actually has the cores (WorkerPool clamps to the hardware) — a
        // 1-core box resolves to the serial loop.
        let dispatch_pool = (cfg.dispatch_workers.max(1) > 1 && n >= DISPATCH_MIN_NODES)
            .then(|| WorkerPool::new(cfg.dispatch_workers))
            .filter(|p| p.workers() > 1);
        let dispatch_shards: Vec<DispatchShard> = match &dispatch_pool {
            Some(p) => (0..p.workers()).map(|_| DispatchShard::default()).collect(),
            None => Vec::new(),
        };
        // Same engagement rule for the protocol-upkeep passes.
        let upkeep_pool = (cfg.upkeep_workers.max(1) > 1 && n >= UPKEEP_MIN_NODES)
            .then(|| WorkerPool::new(cfg.upkeep_workers))
            .filter(|p| p.workers() > 1);
        let upkeep_shards: Vec<UpkeepShard> = match &upkeep_pool {
            Some(p) => (0..p.workers()).map(|_| UpkeepShard::default()).collect(),
            None => Vec::new(),
        };

        Engine {
            metrics: Metrics::new(cfg.measure_from_epoch),
            mac_rng: factory.stream("mac"),
            flood: (0..n).map(|_| FloodingNode::new()).collect(),
            cqd_estimate: Ewma::new(0.2),
            budget_multiplier: 1.0,
            updates_at_last_ehr: 0.0,
            detached_since: vec![None; n],
            samplers: match cfg.sampling {
                SamplingStrategy::EveryEpoch => None,
                SamplingStrategy::Predictive(pc) => Some(
                    (0..n)
                        .map(|_| (0..world.catalog().len()).map(|_| Sampler::new(pc)).collect())
                        .collect(),
                ),
            },
            attach_depth: vec![None; n],
            attach_queue: Vec::with_capacity(n),
            ind_buf: Vec::with_capacity(64),
            finalize_buf: Vec::new(),
            source_mark: vec![false; n],
            dispatch_pool,
            dispatch_shards,
            dispatch_chunks: Vec::new(),
            force_sharded: false,
            upkeep_pool,
            upkeep_shards,
            upkeep_chunks: Vec::new(),
            force_upkeep: false,
            churn_buf: Vec::new(),
            repair_candidates: Vec::new(),
            parent_snapshot: Vec::new(),
            sample_index: SampleIndex::default(),
            timing: None,
            delta_trace: Vec::new(),
            pending: PendingSet::new(cfg.completion_window),
            queries_injected: 0,
            completed: None,
            epoch: 0,
            u_max_per_hour,
            analytic0,
            cfg,
            topo,
            mac,
            world,
            nodes,
            alive,
            qgen,
            churn,
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The deployment graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Protocol state of one node.
    pub fn node(&self, id: NodeId) -> &DirqNode {
        &self.nodes[id.index()]
    }

    /// Liveness oracle.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Collected metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The synthetic world (oracle state).
    pub fn world(&self) -> &SensorWorld {
        &self.world
    }

    /// Collect per-phase wall-clock timings from now on (see
    /// [`Engine::phase_timings`]). Observational only.
    pub fn enable_phase_timing(&mut self) {
        self.timing.get_or_insert_with(Default::default);
    }

    /// Accumulated per-phase timings, when enabled.
    pub fn phase_timings(&self) -> Option<PhaseTimings> {
        self.timing.as_deref().copied()
    }

    /// Test hook: shard indication dispatch over `workers` shards on every
    /// slot, bypassing the size thresholds (the differential suite pins
    /// this path bit-equal to the serial reference). On hosts with fewer
    /// cores the pool degrades to the caller draining all chunks — the
    /// chunk/merge logic still runs in full.
    #[doc(hidden)]
    pub fn force_sharded_dispatch(&mut self, workers: usize) {
        assert!(workers > 1, "forcing sharded dispatch requires at least two shards");
        self.dispatch_pool = Some(WorkerPool::new(workers));
        self.dispatch_shards = (0..workers).map(|_| DispatchShard::default()).collect();
        self.force_sharded = true;
    }

    /// Test hook: shard the protocol-upkeep passes (sampling + repair)
    /// over `workers` shards every epoch, bypassing the size thresholds
    /// (the upkeep differential suite pins this path bit-equal to the
    /// serial reference). On hosts with fewer cores the pool degrades to
    /// the caller draining all chunks — the chunk/merge logic still runs
    /// in full.
    #[doc(hidden)]
    pub fn force_sharded_upkeep(&mut self, workers: usize) {
        assert!(workers > 1, "forcing sharded upkeep requires at least two shards");
        self.upkeep_pool = Some(WorkerPool::new(workers));
        self.upkeep_shards = (0..workers).map(|_| UpkeepShard::default()).collect();
        self.force_upkeep = true;
    }

    /// Test observability: per-node upkeep state — `(parent + 1, children
    /// fingerprint, detached_since + 1, samples taken, samples skipped)`
    /// tuples — so the upkeep differential suite can compare the repair
    /// and sampling outcomes epoch by epoch.
    #[doc(hidden)]
    pub fn upkeep_snapshot(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        (0..self.nodes.len())
            .map(|i| {
                let mut h = crate::metrics::Fnv::new();
                for &c in self.nodes[i].children() {
                    h.u64(c.index() as u64);
                }
                let (taken, skipped) = match &self.samplers {
                    Some(rows) => rows[i]
                        .iter()
                        .fold((0, 0), |(t, k), s| (t + s.samples_taken(), k + s.samples_skipped())),
                    None => (0, 0),
                };
                (
                    self.nodes[i].parent().map_or(0, |p| p.index() as u64 + 1),
                    h.finish(),
                    self.detached_since[i].map_or(0, |e| e + 1),
                    taken,
                    skipped,
                )
            })
            .collect()
    }

    /// Test observability: the in-flight query set in finalisation order as
    /// `(id, inject epoch, tx, rx, receivers marked)` tuples.
    #[doc(hidden)]
    pub fn pending_snapshot(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        self.pending
            .iter_in_order()
            .map(|p| {
                let marked = p.received.iter().filter(|&&r| r).count() as u64;
                (p.query.id.0, p.epoch, p.tx, p.rx, marked)
            })
            .collect()
    }

    /// Post-deployment extensibility (paper Section 4.1/Fig. 4): equip
    /// `node` with an additional sensor at runtime. From the next epoch the
    /// node samples the new type; the resulting Updates create the missing
    /// Range Tables up the tree without any global reconfiguration.
    pub fn add_sensor(&mut self, node: NodeId, stype: dirq_data::SensorType) {
        self.world.assignment_mut().add(node.index(), stype);
    }

    /// Remove a sensor from a node at runtime; the node retracts or shrinks
    /// its advertisement accordingly.
    pub fn remove_sensor(&mut self, node: NodeId, stype: dirq_data::SensorType) {
        self.world.assignment_mut().remove(node.index(), stype);
        let outs = self.nodes[node.index()].drop_own_sensor(stype);
        self.dispatch_outgoing(node, outs);
    }

    /// Reconstruct the spanning tree implied by the protocol state
    /// (children lists + matching parent pointers), used for ground truth.
    pub fn protocol_tree(&self) -> SpanningTree {
        let n = self.topo.len();
        let mut tree = SpanningTree::new(n, NodeId::ROOT);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(NodeId::ROOT);
        while let Some(u) = queue.pop_front() {
            for &c in self.nodes[u.index()].children() {
                if self.alive[c.index()]
                    && !tree.is_attached(c)
                    && self.nodes[c.index()].parent() == Some(u)
                {
                    tree.attach(c, u);
                    queue.push_back(c);
                }
            }
        }
        tree
    }

    /// The scenario configuration this engine runs.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Collect finalised queries for external consumers from now on (see
    /// [`Engine::take_completed`]). Purely observational — the log never
    /// feeds back into the simulation.
    pub fn enable_completed_log(&mut self) {
        self.completed.get_or_insert_with(CompletedLog::default);
    }

    /// Drain the completed-query log (empty unless
    /// [`Engine::enable_completed_log`] was called). Drained entries burn
    /// their sequence numbers: [`Engine::completed_next_seq`] keeps
    /// advancing, so mixing `take_completed` with cursor reads is safe.
    pub fn take_completed(&mut self) -> Vec<CompletedQuery> {
        match &mut self.completed {
            Some(log) => {
                log.first_seq = log.next_seq();
                std::mem::take(&mut log.entries).into()
            }
            None => Vec::new(),
        }
    }

    /// The sequence number the next finalised query will receive — the
    /// cursor a consumer starts from to observe only future completions.
    pub fn completed_next_seq(&self) -> u64 {
        self.completed.as_ref().map_or(0, CompletedLog::next_seq)
    }

    /// Every retained completed-log entry with sequence `>= cursor`, in
    /// sequence order, paired with its sequence number. Entries older
    /// than the retention bound ([`COMPLETED_LOG_CAP`]) are gone; callers
    /// detect the gap by comparing the first returned sequence (or
    /// [`Engine::completed_next_seq`]) against their cursor.
    pub fn completed_since(&self, cursor: u64) -> impl Iterator<Item = (u64, &CompletedQuery)> {
        let (first_seq, entries) = match &self.completed {
            Some(log) => (log.first_seq, &log.entries),
            None => (0, &EMPTY_COMPLETED),
        };
        let skip = cursor.saturating_sub(first_seq).min(entries.len() as u64) as usize;
        entries.iter().enumerate().skip(skip).map(move |(i, e)| (first_seq + i as u64, e))
    }

    /// Look up a retained completed-log entry by query id (most recent
    /// first, though external ids are unique in practice).
    pub fn completed_by_id(&self, id: u64) -> Option<&CompletedQuery> {
        self.completed
            .as_ref()
            .and_then(|log| log.entries.iter().rev().find(|e| e.outcome.id.0 == id))
    }

    /// Inject an externally supplied range query (the daemon's client
    /// path). The id comes from the generator's id space so scheduled and
    /// external queries never collide; ground truth is evaluated against
    /// the current world exactly as for generated queries, and the query
    /// disseminates during the next [`Engine::step_epoch`]. Returns the
    /// assigned id; the outcome surfaces through the completed log once
    /// the completion window elapses.
    ///
    /// # Panics
    /// Panics when `region` is given but the scenario has
    /// `location_enabled = false` (nodes hold no positions to scope by).
    pub fn submit_external_query(
        &mut self,
        stype: dirq_data::SensorType,
        lo: f64,
        hi: f64,
        region: Option<dirq_net::Rect>,
    ) -> QueryId {
        assert!(
            region.is_none() || self.cfg.location_enabled,
            "spatial queries require location_enabled"
        );
        let mut query = dirq_data::RangeQuery::value(QueryId(self.qgen.alloc_id()), stype, lo, hi);
        if let Some(r) = region {
            query = query.with_region(r);
        }
        let tree = self.protocol_tree();
        let alive = &self.alive;
        let truth = dirq_data::workload::ground_truth_for_query(
            self.world.readings(stype),
            self.topo.positions(),
            &tree,
            &query,
            |n: NodeId| alive[n.index()],
        );
        self.queries_injected += 1;
        self.pending.insert(PendingQuery {
            query,
            epoch: self.epoch,
            truth,
            received: vec![false; self.topo.len()],
            tx: 0,
            rx: 0,
        });
        match self.cfg.protocol {
            Protocol::Dirq => {
                let outs = self.nodes[0].on_query(&query);
                self.dispatch_outgoing(NodeId::ROOT, outs);
            }
            Protocol::Flooding => {
                self.flood[0].should_rebroadcast(query.id);
                if self.mac.enqueue(
                    NodeId::ROOT,
                    Destination::Broadcast,
                    DirqMessage::FloodQuery(query),
                ) {
                    self.record_tx_parts(MessageCategory::Query, Some(query.id));
                }
            }
        }
        query.id
    }

    // --- snapshot / restore -----------------------------------------------------

    /// Serialize the engine's full dynamic state to a snapshot body.
    ///
    /// Static structure — topology, tree construction, churn plan, world
    /// fields, node configuration, worker pools — is rebuilt
    /// deterministically by [`Engine::new`] from the same
    /// [`ScenarioConfig`], so only the state that evolves per epoch is
    /// captured: the MAC (with in-flight frames), the world's stochastic
    /// processes and readings, per-node protocol state, the pending query
    /// set, metrics, RNG positions and the root-side control loop.
    /// [`Engine::restore`] overlays it onto a freshly built engine;
    /// resuming must be bit-identical to never having stopped.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag(b"ENGN");
        w.u64(self.epoch);
        self.mac.snap(&mut w, |w, p: &DirqMessage| p.snap(w));
        self.world.snap(&mut w);
        w.len_of(self.nodes.len());
        for node in &self.nodes {
            node.snap(&mut w);
        }
        for f in &self.flood {
            f.snap(&mut w);
        }
        w.bools(&self.alive);
        self.qgen.snap(&mut w);
        self.pending.snap(&mut w);
        self.metrics.snap(&mut w);
        w.rng(&self.mac_rng);
        self.cqd_estimate.snap(&mut w);
        w.f64(self.budget_multiplier);
        w.f64(self.updates_at_last_ehr);
        for &d in &self.detached_since {
            w.opt_u64(d);
        }
        w.bool(self.samplers.is_some());
        if let Some(samplers) = &self.samplers {
            for row in samplers {
                w.len_of(row.len());
                for s in row {
                    s.snap(&mut w);
                }
            }
        }
        w.f64(self.u_max_per_hour);
        w.len_of(self.delta_trace.len());
        for &(e, d) in &self.delta_trace {
            w.u64(e);
            w.f64(d);
        }
        w.len_of(self.queries_injected);
        w.finish()
    }

    /// Overlay a snapshot body captured by [`Engine::snapshot`] onto this
    /// engine, which must be freshly built from the **same**
    /// [`ScenarioConfig`] (same seed, preset and scheme — the snapshot
    /// carries no static structure to check against, only counts).
    /// On success the engine continues from the captured epoch exactly as
    /// the snapshotted one would have.
    pub fn restore(&mut self, body: &[u8]) -> Result<(), SnapError> {
        let n = self.topo.len();
        let mut r = SnapReader::new(body);
        r.tag(b"ENGN")?;
        self.epoch = r.u64()?;
        self.mac.restore(&mut r, DirqMessage::unsnap)?;
        self.world.restore(&mut r)?;
        let pos = r.position();
        if r.seq_len(1)? != n {
            return Err(SnapError::Malformed { pos, what: "engine node count mismatch" });
        }
        for node in &mut self.nodes {
            node.restore(&mut r)?;
        }
        for f in &mut self.flood {
            f.restore(&mut r)?;
        }
        let pos = r.position();
        let alive = r.bools()?;
        if alive.len() != n {
            return Err(SnapError::Malformed { pos, what: "alive bitmap length mismatch" });
        }
        self.alive = alive;
        self.qgen.restore(&mut r)?;
        self.pending.restore(&mut r)?;
        let pos = r.position();
        let metrics = Metrics::unsnap(&mut r)?;
        if metrics.measure_from_epoch != self.cfg.measure_from_epoch {
            return Err(SnapError::Malformed { pos, what: "measurement window mismatch" });
        }
        self.metrics = metrics;
        self.mac_rng = r.rng()?;
        self.cqd_estimate = Ewma::unsnap(&mut r)?;
        self.budget_multiplier = r.f64()?;
        self.updates_at_last_ehr = r.f64()?;
        for d in &mut self.detached_since {
            *d = r.opt_u64()?;
        }
        let pos = r.position();
        if r.bool()? != self.samplers.is_some() {
            return Err(SnapError::Malformed {
                pos,
                what: "sampler presence disagrees with the sampling strategy",
            });
        }
        if let Some(samplers) = &mut self.samplers {
            for row in samplers {
                let pos = r.position();
                if r.seq_len(1)? != row.len() {
                    return Err(SnapError::Malformed { pos, what: "sampler row length mismatch" });
                }
                for s in row {
                    s.restore(&mut r)?;
                }
            }
        }
        self.u_max_per_hour = r.f64()?;
        let traces = r.seq_len(16)?;
        self.delta_trace =
            (0..traces).map(|_| Ok((r.u64()?, r.f64()?))).collect::<Result<_, SnapError>>()?;
        self.queries_injected = r.u64()? as usize;
        // The restored assignment may differ from the one the carrier
        // index was built against; force a rebuild on the next sample.
        self.sample_index.version = None;
        r.expect_eof()
    }

    /// Order-sensitive FNV-1a fingerprint over the full snapshot body —
    /// the daemon's cheap state-equality check (two engines with equal
    /// fingerprints are byte-for-byte the same dynamic state).
    pub fn state_fingerprint(&self) -> u64 {
        let body = self.snapshot();
        let mut h = crate::metrics::Fnv::new();
        h.u64(body.len() as u64);
        let mut words = body.chunks_exact(8);
        for c in &mut words {
            h.u64(u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk")));
        }
        let mut last = [0u8; 8];
        last[..words.remainder().len()].copy_from_slice(words.remainder());
        h.u64(u64::from_le_bytes(last));
        h.finish()
    }

    /// Run to the configured epoch budget and return the results. A
    /// freshly built engine runs all `cfg.epochs`; a restored one runs
    /// only the remaining epochs, so snapshot-resume completes the exact
    /// run it interrupted.
    pub fn run(mut self) -> RunResult {
        while self.epoch < self.cfg.epochs {
            self.step_epoch();
        }
        // Score whatever is still in flight.
        for p in self.pending.take_all_in_order() {
            self.finalize_query(p);
        }
        let final_delta_pcts = self.nodes.iter().map(|n| n.delta_pct()).collect();
        let (samples_taken, samples_skipped) = match &self.samplers {
            None => {
                // Every alive sensing (node, type) pair samples each epoch;
                // exact bookkeeping is only kept for the predictive mode.
                (0, 0)
            }
            Some(samplers) => samplers.iter().flatten().fold((0u64, 0u64), |(t, s), sm| {
                (t + sm.samples_taken(), s + sm.samples_skipped())
            }),
        };
        RunResult {
            metrics: self.metrics,
            n_nodes: self.topo.len(),
            epochs: self.cfg.epochs,
            analytic: self.analytic0,
            u_max_per_hour: self.u_max_per_hour,
            hour_epochs: self.cfg.hour_epochs,
            queries_injected: self.queries_injected,
            mac_stats: *self.mac.stats(),
            mac_data_cost: self.mac.data_ledger().total_cost(),
            mac_control_cost: self.mac.control_ledger().total_cost(),
            final_delta_pcts,
            delta_trace: self.delta_trace,
            samples_taken,
            samples_skipped,
            calibration_probes: self.qgen.ground_truth_probes(),
        }
    }

    /// Advance exactly one epoch (public for fine-grained tests).
    pub fn step_epoch(&mut self) {
        let t0 = self.phase_start();
        if self.epoch > 0 {
            self.world.advance_epoch();
        }
        self.phase_lap(t0, |t| &mut t.world);

        let t0 = self.phase_start();
        self.apply_churn();
        self.phase_lap(t0, |t| &mut t.churn);
        if self.cfg.protocol == Protocol::Dirq {
            let t0 = self.phase_start();
            if self.epoch == 0 && self.cfg.location_enabled {
                // Localisation bootstrap: every node learns its position and
                // the bounding-box adverts converge through the first frames.
                for i in 1..self.nodes.len() {
                    let node = NodeId::from_index(i);
                    if self.alive[i] {
                        let pos = self.topo.position(node);
                        let outs = self.nodes[i].set_position(pos);
                        self.dispatch_outgoing(node, outs);
                    }
                }
            }
            self.repair_orphans();
            self.phase_lap(t0, |t| &mut t.repair);
            if self.epoch.is_multiple_of(self.cfg.hour_epochs) {
                let t0 = self.phase_start();
                self.broadcast_ehr();
                self.phase_lap(t0, |t| &mut t.ehr);
            }
            let t0 = self.phase_start();
            self.sample_sensors();
            self.phase_lap(t0, |t| &mut t.sampling);
        }
        if self.qgen.should_fire(self.epoch) {
            let t0 = self.phase_start();
            self.inject_query();
            self.phase_lap(t0, |t| &mut t.injection);
        }
        self.run_mac_frame();
        let t0 = self.phase_start();
        self.end_epoch_housekeeping();
        self.phase_lap(t0, |t| &mut t.finalize);
        self.epoch += 1;
    }

    /// Start a phase lap — `None` (no clock read at all) when timing is
    /// off, so the hot path stays untouched.
    fn phase_start(&self) -> Option<std::time::Instant> {
        self.timing.is_some().then(std::time::Instant::now)
    }

    /// Close a phase lap into the accumulator `pick` selects.
    fn phase_lap(
        &mut self,
        started: Option<std::time::Instant>,
        pick: fn(&mut PhaseTimings) -> &mut f64,
    ) {
        if let (Some(t0), Some(t)) = (started, self.timing.as_deref_mut()) {
            *pick(t) += t0.elapsed().as_secs_f64();
        }
    }

    // --- epoch phases -----------------------------------------------------------

    fn apply_churn(&mut self) {
        // Fast path: churn-free scenarios (most presets) pay one branch.
        if self.churn.is_empty() {
            return;
        }
        // The events are staged through an engine-owned scratch buffer so
        // the plan's borrow ends before the mutations below (and quiet
        // epochs allocate nothing).
        let mut events = std::mem::take(&mut self.churn_buf);
        events.clear();
        events.extend(self.churn.at_epoch(self.epoch));
        for ev in events.drain(..) {
            match ev {
                dirq_net::churn::ChurnEvent::Death(node) => {
                    self.alive[node.index()] = false;
                    self.mac.set_alive(node, false);
                    self.detached_since[node.index()] = None;
                }
                dirq_net::churn::ChurnEvent::Birth(node) => {
                    self.alive[node.index()] = true;
                    self.mac.set_alive(node, true);
                    // Fresh protocol state: the node joins from scratch.
                    let cfg = NodeConfig {
                        delta_policy: self.cfg.delta_policy,
                        reference_spans: self
                            .cfg
                            .world
                            .clone()
                            .unwrap_or_else(|| WorldConfig::environmental(self.cfg.side))
                            .reference_spans(),
                        variability_alpha: 0.2,
                        tx_threshold_factor: self.cfg.tx_threshold_factor,
                    };
                    self.nodes[node.index()] = DirqNode::new(node, cfg);
                    if self.cfg.location_enabled {
                        let pos = self.topo.position(node);
                        // Orphan: the advert flows on attach.
                        let _ = self.nodes[node.index()].set_position(pos);
                    }
                    self.flood[node.index()] = FloodingNode::new();
                }
            }
        }
        self.churn_buf = events;
    }

    /// Re-attach detached nodes.
    ///
    /// Primary (local) path: an orphan adopts the MAC neighbour advertising
    /// the smallest gateway distance (the paper's cross-layer repair).
    /// Candidates are tried in distance order under a cycle guard so a
    /// transiently stale best choice cannot livelock the node.
    ///
    /// Fallback path: distance-vector staleness can strand whole dangling
    /// regions (count-to-infinity), a failure mode the paper does not
    /// address. Any node detached from the root for more than
    /// `DETACH_FALLBACK_EPOCHS` re-parents onto a MAC neighbour that *is*
    /// attached (sending a Detach to its still-alive old parent). In a real
    /// deployment the same information comes from LMAC's gateway-distance
    /// field aging out; the simulator takes the direct route.
    fn repair_orphans(&mut self) {
        if self.upkeep_shards.len() > 1
            && (self.force_upkeep || self.nodes.len() >= UPKEEP_MIN_ITEMS)
        {
            self.repair_orphans_sharded();
        } else {
            self.repair_orphans_serial();
        }
    }

    /// The serial repair loop — the production path at one worker and the
    /// differential reference the sharded path is pinned against.
    fn repair_orphans_serial(&mut self) {
        self.compute_attachment();

        // Track how long each alive node has been detached from the root.
        for i in 1..self.nodes.len() {
            if !self.alive[i] || self.attach_depth[i].is_some() {
                self.detached_since[i] = None;
            } else if self.detached_since[i].is_none() {
                self.detached_since[i] = Some(self.epoch);
            }
        }

        // Primary: orphans (no parent at all) use the MAC gateway metric.
        // The candidate list reuses an engine-owned scratch buffer across
        // orphans and epochs.
        let mut candidates = std::mem::take(&mut self.repair_candidates);
        for i in 1..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.alive[i] || self.nodes[i].parent().is_some() {
                continue;
            }
            let table = self.mac.neighbor_table(node);
            candidates.clear();
            candidates.extend(table.nodes().filter_map(|nb| {
                let info = table.get(nb).expect("listed neighbour");
                (info.gateway_dist != u16::MAX).then_some((info.gateway_dist, nb))
            }));
            candidates.sort_unstable();
            let Some(parent) =
                candidates.iter().map(|&(_, c)| c).find(|&c| !self.would_cycle(node, c))
            else {
                continue;
            };
            let outs = self.nodes[i].set_parent(Some(parent));
            self.dispatch_outgoing(node, outs);
        }
        self.repair_candidates = candidates;

        // Fallback: long-detached nodes (orphan heads without usable
        // metrics, or interiors of dangling regions) adopt an attached
        // MAC neighbour directly.
        for i in 1..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.alive[i] {
                continue;
            }
            let Some(since) = self.detached_since[i] else { continue };
            if self.epoch.saturating_sub(since) < DETACH_FALLBACK_EPOCHS {
                continue;
            }
            let attach_depth = &self.attach_depth;
            let new_parent = self
                .mac
                .neighbor_table(node)
                .nodes()
                .filter(|&nb| attach_depth[nb.index()].is_some())
                .min_by_key(|&nb| (attach_depth[nb.index()].unwrap_or(u32::MAX), nb));
            let Some(new_parent) = new_parent else { continue };
            if self.nodes[i].parent() == Some(new_parent) {
                continue;
            }
            // Tell the old parent (if any, still alive) to drop us.
            if let Some(old) = self.nodes[i].parent() {
                if self.alive[old.index()]
                    && self.mac.enqueue(node, Destination::unicast(old), DirqMessage::Detach)
                {
                    self.record_tx(&DirqMessage::Detach);
                }
            }
            self.detached_since[i] = None;
            let outs = self.nodes[i].set_parent(Some(new_parent));
            self.dispatch_outgoing(node, outs);
        }
    }

    /// Sharded repair: the read-only scans — detached-since tracking,
    /// per-orphan candidate selection and the fallback choice — run over
    /// contiguous node chunks on the upkeep pool; the adoptions replay
    /// serially in ascending node order.
    ///
    /// Bit-equality with [`Engine::repair_orphans_serial`] rests on one
    /// invariant: during the primary loop, parent pointers change only
    /// `None → Some` (an orphan adopting), so every `Some` edge in the
    /// pre-pass snapshot is also a live edge when the serial loop reaches
    /// the same node. A candidate the snapshot walk rejects as a cycle is
    /// therefore rejected by the live walk too — the replay only has to
    /// re-validate from the first snapshot-acceptable candidate onwards.
    /// The fallback choice depends only on pre-pass state (attach depths
    /// and the neighbour tables, neither touched by adoptions); its live
    /// checks — the same-parent skip and the Detach notice — replay
    /// serially after all primary adoptions, exactly like the serial
    /// phase order.
    fn repair_orphans_sharded(&mut self) {
        self.compute_attachment();
        self.parent_snapshot.clear();
        self.parent_snapshot.extend(self.nodes.iter().map(|nd| nd.parent()));

        let mut chunks = std::mem::take(&mut self.upkeep_chunks);
        fill_chunks(&mut chunks, self.nodes.len() - 1, self.upkeep_shards.len());
        let nchunks = chunks.len();
        let mut shards = std::mem::take(&mut self.upkeep_shards);
        let mut pool = self.upkeep_pool.take().expect("sharded upkeep requires a pool");
        {
            let phase = RepairPhase {
                detached: self.detached_since.as_mut_ptr(),
                shards: shards.as_mut_ptr(),
                mac: &self.mac,
                alive: &self.alive,
                attach_depth: &self.attach_depth,
                parents: &self.parent_snapshot,
                epoch: self.epoch,
                chunks: &chunks,
            };
            pool.run(nchunks, &|k| unsafe { phase.run_chunk(k) });
        }
        self.upkeep_pool = Some(pool);

        // Primary adoptions in ascending node order, re-validated against
        // the live parent chains.
        for shard in shards.iter().take(nchunks) {
            for plan in &shard.orphans {
                let node = plan.node;
                let cands = &shard.cand_pool[plan.first_ok as usize..plan.cand_end as usize];
                let Some(parent) =
                    cands.iter().map(|&(_, c)| c).find(|&c| !self.would_cycle(node, c))
                else {
                    continue;
                };
                let outs = self.nodes[node.index()].set_parent(Some(parent));
                self.dispatch_outgoing(node, outs);
            }
        }

        // Fallback adoptions after every primary adoption is visible,
        // mirroring the serial loop body verbatim.
        for shard in shards.iter().take(nchunks) {
            for &(node, new_parent) in &shard.fallbacks {
                let i = node.index();
                if self.nodes[i].parent() == Some(new_parent) {
                    continue;
                }
                // Tell the old parent (if any, still alive) to drop us.
                if let Some(old) = self.nodes[i].parent() {
                    if self.alive[old.index()]
                        && self.mac.enqueue(node, Destination::unicast(old), DirqMessage::Detach)
                    {
                        self.record_tx(&DirqMessage::Detach);
                    }
                }
                self.detached_since[i] = None;
                let outs = self.nodes[i].set_parent(Some(new_parent));
                self.dispatch_outgoing(node, outs);
            }
        }
        self.upkeep_shards = shards;
        self.upkeep_chunks = chunks;
    }

    /// Recompute the protocol tree's attachment depths into the scratch
    /// buffers — the same traversal as [`Engine::protocol_tree`] (children
    /// lists + matching parent pointers) without building a tree or
    /// allocating. Runs once per epoch for the repair pass.
    fn compute_attachment(&mut self) {
        self.attach_depth.fill(None);
        self.attach_queue.clear();
        self.attach_depth[NodeId::ROOT.index()] = Some(0);
        self.attach_queue.push(NodeId::ROOT);
        let mut head = 0;
        while head < self.attach_queue.len() {
            let u = self.attach_queue[head];
            head += 1;
            let du = self.attach_depth[u.index()].expect("queued nodes are attached");
            for &c in self.nodes[u.index()].children() {
                if self.alive[c.index()]
                    && self.attach_depth[c.index()].is_none()
                    && self.nodes[c.index()].parent() == Some(u)
                {
                    self.attach_depth[c.index()] = Some(du + 1);
                    self.attach_queue.push(c);
                }
            }
        }
    }

    fn would_cycle(&self, node: NodeId, candidate_parent: NodeId) -> bool {
        let mut cur = Some(candidate_parent);
        let mut steps = 0;
        while let Some(p) = cur {
            if p == node {
                return true;
            }
            steps += 1;
            if steps > self.nodes.len() {
                return true;
            }
            cur = self.nodes[p.index()].parent();
        }
        false
    }

    /// Root-side hourly control: compute the per-node update budget from
    /// the analytic model + measured query cost, and flood it down the
    /// tree (the paper's `EHr` message).
    fn broadcast_ehr(&mut self) {
        let tree = self.protocol_tree();
        let costs = TopologyCosts::compute(&self.topo, &tree);
        let n_sensing = costs.n.saturating_sub(1).max(1) as f64;
        let queries_per_hour = self.cfg.hour_epochs as f64 / self.cfg.query_period as f64;
        self.u_max_per_hour =
            costs.f_max().map(|f| f * n_sensing * queries_per_hour).unwrap_or(self.u_max_per_hour);

        // Target: total cost per query = band_center × CF.
        // Prior for CQD before any measurement: half the worst case.
        let cqd = self.cqd_estimate.value_or(costs.cqd_max * 0.5);
        let control_overhead_per_query = 2.0; // EHr amortised: ~2N msgs/hour ÷ (hour/period) queries
        let budget_cost =
            (self.cfg.atc_band_center * costs.flooding - cqd - control_overhead_per_query).max(0.0);
        // Each update message costs 2 (tx + rx).
        let updates_per_query = budget_cost / 2.0;

        // Outer loop: compare the realized update traffic since the last
        // EHr against the desired level and correct the handed-out budget.
        // (The gateway sees the converged update stream; the simulator uses
        // the exact network-wide count.)
        let total_updates = self.metrics.updates_per_bucket.total();
        let realized_last_hour = total_updates - self.updates_at_last_ehr;
        self.updates_at_last_ehr = total_updates;
        if self.epoch > 0 && updates_per_query > 0.0 {
            let realized_per_query = realized_last_hour / queries_per_hour.max(1.0);
            let err = (realized_per_query / updates_per_query).max(0.05);
            self.budget_multiplier = (self.budget_multiplier * err.powf(-0.7)).clamp(0.05, 10.0);
        }
        let per_node_budget_per_epoch =
            self.budget_multiplier * updates_per_query / (self.cfg.query_period as f64 * n_sensing);

        let msg = EhrMessage { queries_per_hour, per_node_budget_per_epoch };
        let outs = self.nodes[0].on_ehr(msg);
        self.dispatch_outgoing(NodeId::ROOT, outs);
    }

    fn sample_sensors(&mut self) {
        // The carrier mask (and so the index) covers the first 64 type
        // ids; catalogs beyond that (the u8 id space allows up to 256)
        // fall back to the original full scan with per-pair lookups.
        if self.world.catalog().len() > 64 {
            self.sample_sensors_unindexed();
            return;
        }
        self.refresh_sample_index();
        if self.upkeep_shards.len() > 1
            && (self.force_upkeep || self.sample_index.carriers.len() >= UPKEEP_MIN_ITEMS)
        {
            self.sample_sensors_sharded();
        } else {
            self.sample_sensors_serial();
        }
    }

    /// Rebuild the carrier index when the sensor assignment has changed
    /// (runtime `add_sensor`/`remove_sensor`; one version probe otherwise).
    fn refresh_sample_index(&mut self) {
        let version = self.world.assignment().version();
        if self.sample_index.version == Some(version) {
            return;
        }
        let n = self.nodes.len();
        self.sample_index.masks.clear();
        self.sample_index.masks.resize(n, 0);
        self.sample_index.carriers.clear();
        for i in 1..n {
            let mask = self.world.assignment().carried_mask(i);
            self.sample_index.masks[i] = mask;
            if mask != 0 {
                self.sample_index.carriers.push(i as u32);
            }
        }
        self.sample_index.version = Some(version);
    }

    /// The serial sampling loop over the carrier index — the production
    /// path at one worker and the differential reference for the sharded
    /// path. Visits exactly the `(node, type)` pairs the full scan in
    /// [`Engine::sample_sensors_unindexed`] visits, in the same order.
    fn sample_sensors_serial(&mut self) {
        let index = std::mem::take(&mut self.sample_index);
        for &ci in &index.carriers {
            let i = ci as usize;
            if !self.alive[i] {
                continue;
            }
            let node = NodeId::from_index(i);
            let mut mask = index.masks[i];
            while mask != 0 {
                let idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let stype = dirq_data::SensorType(idx as u8);
                if let Some(samplers) = &mut self.samplers {
                    if !samplers[i][idx].should_sample() {
                        continue;
                    }
                }
                let Some(reading) = self.world.reading(i, stype) else { continue };
                let outs = self.nodes[i].sample(stype, reading);
                self.dispatch_outgoing(node, outs);
                if let Some(samplers) = &mut self.samplers {
                    let window =
                        self.nodes[i].table(stype).and_then(|t| t.own()).map(|e| (e.min, e.max));
                    samplers[i][idx].on_sampled(reading, window);
                }
            }
        }
        self.sample_index = index;
    }

    /// Sharded sampling: carrier chunks run the full per-node decision
    /// path (adaptive gate, world read, node state update) in place —
    /// samplers and nodes are per-node-disjoint — and defer the
    /// shared-state mutations (MAC enqueues + tallies) as [`Effect`]s
    /// replayed in chunk order, i.e. exactly the serial order.
    fn sample_sensors_sharded(&mut self) {
        let index = std::mem::take(&mut self.sample_index);
        let mut chunks = std::mem::take(&mut self.upkeep_chunks);
        fill_chunks(&mut chunks, index.carriers.len(), self.upkeep_shards.len());
        let nchunks = chunks.len();
        let types: Vec<dirq_data::SensorType> = self.world.catalog().types().collect();
        let rows: Vec<&[f64]> = types.iter().map(|&t| self.world.readings(t)).collect();
        let mut shards = std::mem::take(&mut self.upkeep_shards);
        let mut pool = self.upkeep_pool.take().expect("sharded upkeep requires a pool");
        {
            let phase = SamplePhase {
                nodes: self.nodes.as_mut_ptr(),
                samplers: self
                    .samplers
                    .as_mut()
                    .map_or(std::ptr::null_mut(), |rows| rows.as_mut_ptr()),
                shards: shards.as_mut_ptr(),
                carriers: &index.carriers,
                masks: &index.masks,
                alive: &self.alive,
                rows: &rows,
                types: &types,
                chunks: &chunks,
            };
            pool.run(nchunks, &|k| unsafe { phase.run_chunk(k) });
        }
        self.upkeep_pool = Some(pool);
        for shard in shards.iter_mut().take(nchunks) {
            let mut effects = std::mem::take(&mut shard.effects);
            for e in effects.drain(..) {
                self.apply_effect(e);
            }
            shard.effects = effects;
        }
        self.upkeep_shards = shards;
        self.upkeep_chunks = chunks;
        self.sample_index = index;
    }

    /// The original full-scan sampling loop, kept for catalogs past the
    /// 64-type mask space.
    fn sample_sensors_unindexed(&mut self) {
        let small_catalog = self.world.catalog().len() <= 64;
        for i in 1..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.alive[i] {
                continue;
            }
            // One row fetch per node; the per-type test is then a bit probe.
            let carried = self.world.assignment().carried_mask(i);
            if carried == 0 && small_catalog {
                continue;
            }
            for stype in self.world.catalog().types() {
                let idx = stype.index();
                let carries = if idx < 64 {
                    carried & (1 << idx) != 0
                } else {
                    self.world.assignment().has(i, stype)
                };
                if carries {
                    if let Some(samplers) = &mut self.samplers {
                        if !samplers[i][stype.index()].should_sample() {
                            continue;
                        }
                    }
                    let Some(reading) = self.world.reading(i, stype) else { continue };
                    let outs = self.nodes[i].sample(stype, reading);
                    self.dispatch_outgoing(node, outs);
                    if let Some(samplers) = &mut self.samplers {
                        let window = self.nodes[i]
                            .table(stype)
                            .and_then(|t| t.own())
                            .map(|e| (e.min, e.max));
                        samplers[i][stype.index()].on_sampled(reading, window);
                    }
                }
            }
        }
    }

    fn inject_query(&mut self) {
        let tree = self.protocol_tree();
        let alive = &self.alive;
        let positions: &[dirq_net::Position] =
            if self.cfg.location_enabled { self.topo.positions() } else { &[] };
        let Some(CalibratedQuery { query, truth }) =
            self.qgen.generate(&self.world, positions, &tree, |n: NodeId| alive[n.index()])
        else {
            return;
        };
        self.queries_injected += 1;
        self.pending.insert(PendingQuery {
            query,
            epoch: self.epoch,
            truth,
            received: vec![false; self.topo.len()],
            tx: 0,
            rx: 0,
        });
        match self.cfg.protocol {
            Protocol::Dirq => {
                let outs = self.nodes[0].on_query(&query);
                self.dispatch_outgoing(NodeId::ROOT, outs);
            }
            Protocol::Flooding => {
                self.flood[0].should_rebroadcast(query.id);
                if self.mac.enqueue(
                    NodeId::ROOT,
                    Destination::Broadcast,
                    DirqMessage::FloodQuery(query),
                ) {
                    self.record_tx_parts(MessageCategory::Query, Some(query.id));
                }
            }
        }
    }

    fn run_mac_frame(&mut self) {
        let slots = self.cfg.lmac.slots_per_frame;
        // The buffer is moved out for the frame so dispatching (which may
        // re-enter the MAC, e.g. flooding rebroadcasts) can borrow `self`.
        let mut buf = std::mem::take(&mut self.ind_buf);
        for _ in 0..slots {
            buf.clear();
            let t0 = self.phase_start();
            self.mac.advance_slot_into(&mut self.mac_rng, &mut buf);
            self.phase_lap(t0, |t| &mut t.mac);
            let t0 = self.phase_start();
            self.dispatch_slot(&mut buf);
            self.phase_lap(t0, |t| &mut t.dispatch);
        }
        self.ind_buf = buf;
    }

    /// Dispatch one slot's indications: the sharded path when several
    /// dispatch shards are configured and the slot's shardable prefix is
    /// worth the fan-out, the serial reference loop otherwise.
    fn dispatch_slot(&mut self, buf: &mut Vec<MacIndication<DirqMessage>>) {
        if self.dispatch_shards.len() > 1 {
            let prefix = dispatch_prefix_len(buf);
            if prefix > 0 && (self.force_sharded || prefix >= DISPATCH_MIN_PREFIX) {
                self.dispatch_slot_sharded(buf, prefix);
                return;
            }
        }
        for ind in buf.drain(..) {
            self.dispatch_indication(ind);
        }
    }

    /// Shard the slot's Delivered/NeighborNew prefix over the worker pool
    /// in listener-aligned chunks, then replay the collected shared-state
    /// effects in chunk order — bit-identical to the serial loop at any
    /// worker count. The tail past the prefix (undeliverables,
    /// frame-boundary death notices) always runs serially.
    fn dispatch_slot_sharded(&mut self, buf: &mut Vec<MacIndication<DirqMessage>>, prefix: usize) {
        let nshards = self.dispatch_shards.len();
        let mut chunks = std::mem::take(&mut self.dispatch_chunks);
        chunks.clear();
        let mut start = 0usize;
        while start < prefix {
            let k = chunks.len();
            let mut end =
                if k + 1 >= nshards { prefix } else { (prefix * (k + 1) / nshards).max(start + 1) };
            // Never split an equal-listener run: per-node handler state
            // must stay inside one chunk.
            while end < prefix && dispatch_listener(&buf[end]) == dispatch_listener(&buf[end - 1]) {
                end += 1;
            }
            chunks.push((start as u32, end as u32));
            start = end;
        }
        let nchunks = chunks.len();

        let mut shards = std::mem::take(&mut self.dispatch_shards);
        let mut pool = self.dispatch_pool.take().expect("sharded dispatch requires a pool");
        {
            let phase = DispatchPhase {
                nodes: self.nodes.as_mut_ptr(),
                flood: self.flood.as_mut_ptr(),
                shards: shards.as_mut_ptr(),
                inds: &buf[..prefix],
                chunks: &chunks,
            };
            pool.run(nchunks, &|k| unsafe { phase.run_chunk(k) });
        }
        self.dispatch_pool = Some(pool);
        // Replay the shared-state effects in chunk order — exactly the
        // order the serial loop would have produced them in.
        for shard in shards.iter_mut().take(nchunks) {
            let mut effects = std::mem::take(&mut shard.effects);
            for e in effects.drain(..) {
                self.apply_effect(e);
            }
            shard.effects = effects;
        }
        self.dispatch_shards = shards;
        self.dispatch_chunks = chunks;
        for ind in buf.drain(prefix..) {
            self.dispatch_indication(ind);
        }
        buf.clear();
    }

    /// Apply one shared-state effect collected by a dispatch shard. Each
    /// arm mirrors its serial counterpart in [`Engine::dispatch_indication`]
    /// / [`Engine::dispatch_outgoing`] verbatim.
    fn apply_effect(&mut self, e: Effect) {
        match e {
            Effect::Rx { category, query } => {
                self.metrics.on_rx(category, self.epoch);
                if let Some(id) = query {
                    if let Some(p) = self.pending.get_mut(id) {
                        p.rx += 1;
                    }
                }
            }
            Effect::MarkReceived { query, node } => {
                if let Some(p) = self.pending.get_mut(query) {
                    p.received[node.index()] = true;
                }
            }
            Effect::Enqueue { from, dest, msg, category, query } => {
                if self.mac.enqueue(from, dest, msg) {
                    self.record_tx_parts(category, query);
                }
            }
            Effect::EnqueueShared { from, payload, query } => {
                if self.mac.enqueue_shared(from, Destination::Broadcast, payload) {
                    self.record_tx_parts(MessageCategory::Query, Some(query));
                }
            }
        }
    }

    fn end_epoch_housekeeping(&mut self) {
        if self.cfg.protocol == Protocol::Dirq {
            for i in 1..self.nodes.len() {
                if self.alive[i] {
                    self.nodes[i].end_epoch();
                }
            }
        }
        // Finalise queries whose completion window elapsed (one expiry-ring
        // bucket probe per epoch; see `crate::pending`).
        let mut due = std::mem::take(&mut self.finalize_buf);
        due.clear();
        self.pending.expire_due(self.epoch, &mut due);
        for p in due.drain(..) {
            self.finalize_query(p);
        }
        self.finalize_buf = due;
        // δ trace every 100 epochs.
        if self.epoch.is_multiple_of(100) {
            let (sum, count) = self
                .nodes
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(i, _)| self.alive[*i])
                .fold((0.0, 0u32), |(s, c), (_, n)| (s + n.delta_pct(), c + 1));
            if count > 0 {
                self.delta_trace.push((self.epoch, sum / f64::from(count)));
            }
        }
    }

    // --- message plumbing -----------------------------------------------------

    fn record_tx(&mut self, msg: &DirqMessage) {
        self.record_tx_parts(msg.category(), query_id_of(msg));
    }

    /// Like [`Engine::record_tx`] with the message parts pre-extracted, so
    /// callers can hand the message itself to the MAC without cloning it.
    fn record_tx_parts(&mut self, category: MessageCategory, query: Option<QueryId>) {
        self.metrics.on_tx(category, self.epoch);
        if let Some(id) = query {
            if let Some(p) = self.pending.get_mut(id) {
                p.tx += 1;
            }
        }
    }

    fn record_rx(&mut self, msg: &DirqMessage) {
        self.metrics.on_rx(msg.category(), self.epoch);
        if let Some(id) = query_id_of(msg) {
            if let Some(p) = self.pending.get_mut(id) {
                p.rx += 1;
            }
        }
    }

    fn dispatch_outgoing(&mut self, from: NodeId, outs: Vec<Outgoing>) {
        for out in outs {
            match out {
                Outgoing::ToParent(msg) => {
                    let Some(parent) = self.nodes[from.index()].parent() else {
                        continue;
                    };
                    let (category, query) = (msg.category(), query_id_of(&msg));
                    if self.mac.enqueue(from, Destination::unicast(parent), msg) {
                        self.record_tx_parts(category, query);
                    }
                }
                Outgoing::ToChildren(dests, msg) => {
                    if dests.is_empty() {
                        continue;
                    }
                    let (category, query) = (msg.category(), query_id_of(&msg));
                    if self.mac.enqueue(from, Destination::Multicast(dests), msg) {
                        self.record_tx_parts(category, query);
                    }
                }
                Outgoing::DeliverLocal(_query) => {
                    // The node believes it is a source. Reception has
                    // already been recorded; true-source accounting happens
                    // at finalisation against ground truth.
                }
            }
        }
    }

    fn dispatch_indication(&mut self, ind: MacIndication<DirqMessage>) {
        match ind {
            MacIndication::Delivered { to, from, payload } => {
                self.record_rx(&payload);
                match &*payload {
                    DirqMessage::Update { stype, min, max } => {
                        let outs = self.nodes[to.index()].on_update(from, *stype, *min, *max);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::Retract { stype } => {
                        let outs = self.nodes[to.index()].on_retract(from, *stype);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::Attach => {
                        if self.nodes[to.index()].parent() != Some(from) {
                            self.nodes[to.index()].on_attach(from);
                        }
                    }
                    DirqMessage::Detach => {
                        let outs = self.nodes[to.index()].on_child_lost(from);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::GeoAdvert(rect) => {
                        let outs = self.nodes[to.index()].on_geo_advert(from, *rect);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::Ehr(msg) => {
                        let outs = self.nodes[to.index()].on_ehr(*msg);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::Query(q) => {
                        if !to.is_root() {
                            if let Some(p) = self.pending.get_mut(q.id) {
                                p.received[to.index()] = true;
                            }
                        }
                        let outs = self.nodes[to.index()].on_query(q);
                        self.dispatch_outgoing(to, outs);
                    }
                    DirqMessage::FloodQuery(q) => {
                        // The root hears rebroadcasts too (that reception is
                        // part of flooding's 2·links cost) but does not
                        // count as a *reached* node — it injected the query.
                        let qid = q.id;
                        if !to.is_root() {
                            if let Some(p) = self.pending.get_mut(qid) {
                                p.received[to.index()] = true;
                            }
                        }
                        // Zero-copy rebroadcast: forward the interned
                        // payload handle instead of rebuilding the message.
                        if self.flood[to.index()].should_rebroadcast(qid)
                            && self.mac.enqueue_shared(to, Destination::Broadcast, payload.clone())
                        {
                            self.record_tx_parts(MessageCategory::Query, Some(qid));
                        }
                    }
                }
            }
            MacIndication::NeighborDied { observer, dead } => {
                if self.cfg.protocol != Protocol::Dirq {
                    return;
                }
                if self.nodes[observer.index()].parent() == Some(dead) {
                    let outs = self.nodes[observer.index()].set_parent(None);
                    self.dispatch_outgoing(observer, outs);
                } else if self.nodes[observer.index()].children().contains(&dead) {
                    let outs = self.nodes[observer.index()].on_child_lost(dead);
                    self.dispatch_outgoing(observer, outs);
                }
            }
            MacIndication::NeighborNew { .. } => {
                // Attachment is initiated by the joining node via the
                // repair loop; nothing to do on the observer side.
            }
            MacIndication::Undeliverable { .. } => {
                // Lost messages heal through the liveness upcalls and the
                // re-advertisement on re-attachment.
            }
        }
    }

    fn finalize_query(&mut self, p: PendingQuery) {
        let received = p.received.iter().filter(|&&r| r).count();
        // Mark the true sources once, so per-node membership is a bit probe
        // instead of a scan of the source list (O(n) per query, not
        // O(n × sources)).
        for &s in &p.truth.sources {
            self.source_mark[s.index()] = true;
        }
        let mut received_should = 0;
        let mut sources_reached = 0;
        for (i, &r) in p.received.iter().enumerate() {
            if r && p.truth.involved[i] {
                received_should += 1;
            }
            if r && self.source_mark[i] {
                sources_reached += 1;
            }
        }
        for &s in &p.truth.sources {
            self.source_mark[s.index()] = false;
        }
        self.cqd_estimate.observe((p.tx + p.rx) as f64);
        let outcome = QueryOutcome {
            id: p.query.id,
            epoch: p.epoch,
            stype: p.query.stype,
            should_receive: p.truth.involved_count,
            true_sources: p.truth.sources.len(),
            received,
            received_should,
            received_should_not: received - received_should,
            sources_reached,
            n_nodes: self.topo.len(),
        };
        if let Some(log) = &mut self.completed {
            log.push(CompletedQuery {
                outcome: outcome.clone(),
                answered_epoch: self.epoch,
                tx: p.tx,
                rx: p.rx,
            });
        }
        self.metrics.on_query_done(outcome);
    }
}

fn query_id_of(msg: &DirqMessage) -> Option<QueryId> {
    match msg {
        DirqMessage::Query(q) | DirqMessage::FloodQuery(q) => Some(q.id),
        _ => None,
    }
}

// --- sharded indication dispatch ---------------------------------------------
//
// Between MAC slots the engine dispatches each slot's indications to the
// protocol handlers. The MAC emits them in a fixed shape: a prefix of
// Delivered/NeighborNew events in non-decreasing listener order (the
// listener phase scans listeners ascending), then per-transmitter
// Undeliverable batches, with NeighborDied only at the frame boundary.
// Handlers touch only their own node's protocol state, so the prefix can
// be cut into listener-disjoint chunks and run concurrently — everything
// that touches *shared* state (metrics, pending tallies, MAC enqueues) is
// collected per chunk as [`Effect`]s and replayed on the engine in chunk
// order, reproducing the serial loop bit for bit. The serial
// [`Engine::dispatch_indication`] stays as the reference implementation;
// `tests/dispatch_differential.rs` pins the two paths against each other.

/// Below this many shardable indications in a slot the fan-out costs more
/// than the work; the serial loop runs instead.
const DISPATCH_MIN_PREFIX: usize = 64;

/// Deployments below this node count never produce slots dense enough to
/// shard; skip even creating the pool.
const DISPATCH_MIN_NODES: usize = 512;

/// A shared-state mutation collected inside a dispatch chunk, replayed on
/// the engine in order. Each variant mirrors one serial-path site.
enum Effect {
    /// [`Engine::record_rx`] for a delivered payload.
    Rx { category: MessageCategory, query: Option<QueryId> },
    /// Mark `node` as having received `query` (the pending tally).
    MarkReceived { query: QueryId, node: NodeId },
    /// [`Engine::dispatch_outgoing`]'s enqueue + tx record.
    Enqueue {
        from: NodeId,
        dest: Destination,
        msg: DirqMessage,
        category: MessageCategory,
        query: Option<QueryId>,
    },
    /// The zero-copy flooding rebroadcast (enqueue of the interned payload
    /// handle + tx record).
    EnqueueShared { from: NodeId, payload: PayloadHandle<DirqMessage>, query: QueryId },
}

/// One worker's effect buffer, reused across slots.
#[derive(Default)]
struct DispatchShard {
    effects: Vec<Effect>,
}

/// Shared view of the engine state a dispatch fan-out needs. Raw pointers
/// because chunks write disjoint `nodes`/`flood`/`shards` elements — the
/// borrow checker cannot see the listener partition.
struct DispatchPhase<'a> {
    nodes: *mut DirqNode,
    flood: *mut FloodingNode,
    shards: *mut DispatchShard,
    inds: &'a [MacIndication<DirqMessage>],
    chunks: &'a [(u32, u32)],
}

// SAFETY: `run_chunk(k)` for distinct `k` touches disjoint state — chunk
// bounds never split an equal-listener run and listeners are
// non-decreasing, so the node/flood entries written by different chunks
// never alias, and shard `k` is written by chunk `k` alone.
unsafe impl Sync for DispatchPhase<'_> {}

impl DispatchPhase<'_> {
    /// Process chunk `k`'s indications into shard `k`'s effect buffer.
    ///
    /// SAFETY: the caller must run each `k < chunks.len()` at most once
    /// per phase (the worker pool's claim protocol guarantees exactly
    /// once), with `chunks` a listener-aligned partition of `inds`.
    unsafe fn run_chunk(&self, k: usize) {
        let (start, end) = self.chunks[k];
        let shard = &mut *self.shards.add(k);
        shard.effects.clear();
        for ind in &self.inds[start as usize..end as usize] {
            // NeighborNew — the only other variant in the shardable
            // prefix — is a protocol-plane no-op (attachment is
            // initiated by the joining node).
            if let MacIndication::Delivered { to, from, payload } = ind {
                let node = &mut *self.nodes.add(to.index());
                let flood = &mut *self.flood.add(to.index());
                delivered_effects(node, flood, *to, *from, payload, &mut shard.effects);
            }
        }
    }
}

/// The listener a shardable indication targets; `None` ends the prefix.
fn dispatch_listener(ind: &MacIndication<DirqMessage>) -> Option<NodeId> {
    match ind {
        MacIndication::Delivered { to, .. } => Some(*to),
        MacIndication::NeighborNew { observer, .. } => Some(*observer),
        _ => None,
    }
}

/// Length of the leading run of Delivered/NeighborNew indications with
/// non-decreasing listeners — the region whose handlers touch disjoint
/// per-node state. The MAC emits the whole listener phase in this shape;
/// the check is defensive so correctness never depends on that invariant.
fn dispatch_prefix_len(inds: &[MacIndication<DirqMessage>]) -> usize {
    let mut prev: Option<NodeId> = None;
    for (i, ind) in inds.iter().enumerate() {
        match dispatch_listener(ind) {
            Some(l) if prev.is_none_or(|p| p <= l) => prev = Some(l),
            _ => return i,
        }
    }
    inds.len()
}

/// The sharded replica of [`Engine::dispatch_indication`]'s `Delivered`
/// arm: run the per-node handlers in place, collect every shared-state
/// mutation as effects in the exact order the serial arm performs them.
fn delivered_effects(
    node: &mut DirqNode,
    flood: &mut FloodingNode,
    to: NodeId,
    from: NodeId,
    payload: &PayloadHandle<DirqMessage>,
    effects: &mut Vec<Effect>,
) {
    effects.push(Effect::Rx { category: payload.category(), query: query_id_of(payload) });
    match &**payload {
        DirqMessage::Update { stype, min, max } => {
            let outs = node.on_update(from, *stype, *min, *max);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::Retract { stype } => {
            let outs = node.on_retract(from, *stype);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::Attach => {
            if node.parent() != Some(from) {
                node.on_attach(from);
            }
        }
        DirqMessage::Detach => {
            let outs = node.on_child_lost(from);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::GeoAdvert(rect) => {
            let outs = node.on_geo_advert(from, *rect);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::Ehr(msg) => {
            let outs = node.on_ehr(*msg);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::Query(q) => {
            if !to.is_root() {
                effects.push(Effect::MarkReceived { query: q.id, node: to });
            }
            let outs = node.on_query(q);
            queue_outgoing(node, to, outs, effects);
        }
        DirqMessage::FloodQuery(q) => {
            let qid = q.id;
            if !to.is_root() {
                effects.push(Effect::MarkReceived { query: qid, node: to });
            }
            // The duplicate filter is per-node state — resolved in-shard;
            // only the actual enqueue is deferred.
            if flood.should_rebroadcast(qid) {
                effects.push(Effect::EnqueueShared {
                    from: to,
                    payload: payload.clone(),
                    query: qid,
                });
            }
        }
    }
}

/// The sharded replica of [`Engine::dispatch_outgoing`]: resolve
/// addressing against the handler node's state (parents cannot change
/// inside a slot's shardable prefix) and defer the enqueue as an effect.
fn queue_outgoing(node: &DirqNode, from: NodeId, outs: Vec<Outgoing>, effects: &mut Vec<Effect>) {
    for out in outs {
        match out {
            Outgoing::ToParent(msg) => {
                let Some(parent) = node.parent() else {
                    continue;
                };
                let (category, query) = (msg.category(), query_id_of(&msg));
                effects.push(Effect::Enqueue {
                    from,
                    dest: Destination::unicast(parent),
                    msg,
                    category,
                    query,
                });
            }
            Outgoing::ToChildren(dests, msg) => {
                if dests.is_empty() {
                    continue;
                }
                let (category, query) = (msg.category(), query_id_of(&msg));
                effects.push(Effect::Enqueue {
                    from,
                    dest: Destination::Multicast(dests),
                    msg,
                    category,
                    query,
                });
            }
            Outgoing::DeliverLocal(_query) => {
                // Same as the serial arm: source accounting happens at
                // finalisation against ground truth.
            }
        }
    }
}

// --- sharded protocol upkeep -------------------------------------------------
//
// The per-node upkeep passes — sensor sampling and the tree-repair scans —
// are per-node-disjoint exactly like the world advance: each node's
// decisions read shared state (the world, the MAC neighbour tables, the
// pre-pass attachment) but mutate only its own protocol/sampler state.
// Sampling shards run the real decision path in place and defer the
// shared-state mutations as [`Effect`]s replayed in chunk order (the PR 6
// dispatch pattern). Repair shards compute per-node *decisions* only —
// the adoptions replay serially in ascending node order with a live
// cycle re-validate. Both serial loops stay as the reference
// implementations; `tests/upkeep_differential.rs` pins the paths against
// each other.

/// Epochs a node stays detached before the repair fallback adopts an
/// attached MAC neighbour directly.
const DETACH_FALLBACK_EPOCHS: u64 = 25;

/// Deployments below this node count never have upkeep passes dense
/// enough to shard; skip even creating the pool.
const UPKEEP_MIN_NODES: usize = 512;

/// Below this many per-pass work items (carrier nodes to sample, nodes to
/// scan for repair) the fan-out costs more than the work; the serial
/// loops run even when an upkeep pool exists.
const UPKEEP_MIN_ITEMS: usize = 256;

/// One worker's buffers for the upkeep passes, reused across epochs:
/// deferred sampling effects plus the repair scan's per-node decisions.
#[derive(Default)]
struct UpkeepShard {
    /// Sampling: shared-state mutations to replay in chunk order.
    effects: Vec<Effect>,
    /// Repair: flat `(gateway_dist, neighbour)` candidate storage, sorted
    /// per orphan; [`OrphanPlan`]s index ranges of it.
    cand_pool: Vec<(u16, NodeId)>,
    /// Repair: per-orphan adoption plans, in ascending node order.
    orphans: Vec<OrphanPlan>,
    /// Repair: long-detached nodes and their chosen attached neighbour,
    /// in ascending node order.
    fallbacks: Vec<(NodeId, NodeId)>,
}

/// One orphan's candidate scan result: `cand_pool[first_ok..cand_end]`
/// holds its sorted candidates from the first one the pre-pass snapshot
/// accepts (everything before that is rejected by the live walk too —
/// see [`Engine::repair_orphans_sharded`]).
struct OrphanPlan {
    node: NodeId,
    cand_end: u32,
    first_ok: u32,
}

/// Carrier index over the sensor assignment: the ascending list of nodes
/// carrying at least one sensor plus their carried-type masks, rebuilt
/// only when the assignment version changes. Iterating carriers node-outer
/// with mask bits ascending visits exactly the `(node, type)` pairs the
/// full `1..n` × catalog scan visits, in the same order — so the indexed
/// paths stay bit-identical to the original loop while skipping
/// non-carriers entirely.
#[derive(Default)]
struct SampleIndex {
    /// Assignment version the index was built against.
    version: Option<u64>,
    /// Carried-type mask per node (bit `t.index()`, first 64 type ids).
    masks: Vec<u64>,
    /// Ascending node indices with a non-zero mask (the root excluded).
    carriers: Vec<u32>,
}

/// Shared view of the engine state a sampling fan-out needs. Raw pointers
/// because chunks write disjoint `nodes`/`samplers`/`shards` elements —
/// the carrier chunks partition the node set.
struct SamplePhase<'a> {
    nodes: *mut DirqNode,
    /// Per-node sampler rows; null under [`SamplingStrategy::EveryEpoch`].
    samplers: *mut Vec<Sampler>,
    shards: *mut UpkeepShard,
    carriers: &'a [u32],
    masks: &'a [u64],
    alive: &'a [bool],
    /// Current readings per type id (`NaN` = no reading), mirroring
    /// `SensorWorld::reading`.
    rows: &'a [&'a [f64]],
    types: &'a [dirq_data::SensorType],
    chunks: &'a [(u32, u32)],
}

// SAFETY: `run_chunk(k)` for distinct `k` touches disjoint state — the
// chunks partition the carrier list and carriers are distinct node
// indices, so the node/sampler entries written by different chunks never
// alias, and shard `k` is written by chunk `k` alone.
unsafe impl Sync for SamplePhase<'_> {}

impl SamplePhase<'_> {
    /// Run chunk `k`'s carriers through the sampling decision path,
    /// deferring shared-state mutations into shard `k`.
    ///
    /// SAFETY: the caller must run each `k < chunks.len()` at most once
    /// per phase, with `chunks` a partition of `carriers`.
    unsafe fn run_chunk(&self, k: usize) {
        let (start, end) = self.chunks[k];
        let shard = &mut *self.shards.add(k);
        shard.effects.clear();
        for &ci in &self.carriers[start as usize..end as usize] {
            let i = ci as usize;
            if !self.alive[i] {
                continue;
            }
            let node_id = NodeId::from_index(i);
            let node = &mut *self.nodes.add(i);
            let mut sampler_row = (!self.samplers.is_null()).then(|| &mut *self.samplers.add(i));
            let mut mask = self.masks[i];
            while mask != 0 {
                let idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(row) = sampler_row.as_deref_mut() {
                    if !row[idx].should_sample() {
                        continue;
                    }
                }
                let reading = self.rows[idx][i];
                if reading.is_nan() {
                    continue;
                }
                let stype = self.types[idx];
                let outs = node.sample(stype, reading);
                queue_outgoing(node, node_id, outs, &mut shard.effects);
                if let Some(row) = sampler_row.as_deref_mut() {
                    let window = node.table(stype).and_then(|t| t.own()).map(|e| (e.min, e.max));
                    row[idx].on_sampled(reading, window);
                }
            }
        }
    }
}

/// Shared view of the engine state the repair scan needs. The MAC goes in
/// as a raw pointer because `NeighborArena` holds per-node `Cell` caches
/// that make it `!Sync`; the scan only calls `neighbor_table(..).nodes()`
/// / `.get(..)`, which never touch those cells. `detached` entries are
/// written by the owning node's chunk alone.
struct RepairPhase<'a> {
    detached: *mut Option<u64>,
    shards: *mut UpkeepShard,
    mac: *const LmacNetwork<DirqMessage>,
    alive: &'a [bool],
    attach_depth: &'a [Option<u32>],
    /// Pre-pass parent snapshot (the live parents at phase start).
    parents: &'a [Option<NodeId>],
    epoch: u64,
    chunks: &'a [(u32, u32)],
}

// SAFETY: chunks cover disjoint node ranges, each node's `detached` slot
// is written only by its own chunk, shard `k` is written by chunk `k`
// alone, and the MAC access is restricted to the Cell-free read-only
// neighbour-view methods (see the struct doc).
unsafe impl Sync for RepairPhase<'_> {}

impl RepairPhase<'_> {
    /// Scan chunk `k`'s nodes (`1 + start .. 1 + end`): detached-since
    /// tracking plus the orphan/fallback decisions, recorded into shard
    /// `k` in ascending node order.
    ///
    /// SAFETY: the caller must run each `k < chunks.len()` at most once
    /// per phase, with `chunks` a partition of `0..n-1` (offset by the
    /// root).
    unsafe fn run_chunk(&self, k: usize) {
        let (start, end) = self.chunks[k];
        let shard = &mut *self.shards.add(k);
        shard.cand_pool.clear();
        shard.orphans.clear();
        shard.fallbacks.clear();
        for i in (1 + start as usize)..(1 + end as usize) {
            let node = NodeId::from_index(i);
            let detached = &mut *self.detached.add(i);
            // Tracking: the same per-node rule as the serial loop (safe to
            // fuse — no later repair step reads another node's slot).
            if !self.alive[i] || self.attach_depth[i].is_some() {
                *detached = None;
            } else if detached.is_none() {
                *detached = Some(self.epoch);
            }
            if !self.alive[i] {
                continue;
            }
            // Primary scan: orphan candidates against the parent snapshot.
            if self.parents[i].is_none() {
                let table = (*self.mac).neighbor_table(node);
                let cand_start = shard.cand_pool.len() as u32;
                shard.cand_pool.extend(table.nodes().filter_map(|nb| {
                    let info = table.get(nb).expect("listed neighbour");
                    (info.gateway_dist != u16::MAX).then_some((info.gateway_dist, nb))
                }));
                let cands = &mut shard.cand_pool[cand_start as usize..];
                cands.sort_unstable();
                let first_ok = cands
                    .iter()
                    .position(|&(_, c)| !snapshot_would_cycle(self.parents, node, c))
                    .unwrap_or(cands.len());
                shard.orphans.push(OrphanPlan {
                    node,
                    cand_end: shard.cand_pool.len() as u32,
                    first_ok: cand_start + first_ok as u32,
                });
            }
            // Fallback scan: the choice depends only on pre-pass state;
            // the live checks replay serially.
            if let Some(since) = *detached {
                if self.epoch.saturating_sub(since) >= DETACH_FALLBACK_EPOCHS {
                    let attach_depth = self.attach_depth;
                    let choice = (*self.mac)
                        .neighbor_table(node)
                        .nodes()
                        .filter(|&nb| attach_depth[nb.index()].is_some())
                        .min_by_key(|&nb| (attach_depth[nb.index()].unwrap_or(u32::MAX), nb));
                    if let Some(new_parent) = choice {
                        shard.fallbacks.push((node, new_parent));
                    }
                }
            }
        }
    }
}

/// [`Engine::would_cycle`] against a parent snapshot instead of the live
/// nodes. Because parents only change `None → Some` during the primary
/// adoptions, every `Some` edge here is also a live edge — so a `true`
/// from this walk implies a `true` from the live walk at any later point
/// in the pass.
fn snapshot_would_cycle(
    parents: &[Option<NodeId>],
    node: NodeId,
    candidate_parent: NodeId,
) -> bool {
    let mut cur = Some(candidate_parent);
    let mut steps = 0;
    while let Some(p) = cur {
        if p == node {
            return true;
        }
        steps += 1;
        if steps > parents.len() {
            return true;
        }
        cur = parents[p.index()];
    }
    false
}

/// Split `items` work items into at most `nshards` contiguous non-empty
/// `[start, end)` chunks of near-equal size.
fn fill_chunks(chunks: &mut Vec<(u32, u32)>, items: usize, nshards: usize) {
    chunks.clear();
    let mut start = 0usize;
    for k in 0..nshards {
        let end = items * (k + 1) / nshards;
        if end > start {
            chunks.push((start as u32, end as u32));
            start = end;
        }
    }
}

/// Convenience: build and run a scenario in one call.
pub fn run_scenario(cfg: ScenarioConfig) -> RunResult {
    Engine::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig { epochs: 500, measure_from_epoch: 100, ..ScenarioConfig::paper(seed) }
    }

    #[test]
    fn dirq_run_completes_and_injects_queries() {
        let r = run_scenario(small(1));
        assert_eq!(r.epochs, 500);
        // Queries at epochs 20, 40, …, 480 → 24 of them.
        assert_eq!(r.queries_injected, 24);
        assert_eq!(r.metrics.outcomes.len(), 24);
        assert!(r.metrics.update_cost.tx > 0, "updates must flow");
    }

    #[test]
    fn queries_reach_most_relevant_nodes() {
        let r = run_scenario(small(2));
        let mean_recall =
            r.metrics.mean_over_queries(|o| o.source_recall()).expect("measured queries exist");
        assert!(mean_recall > 0.9, "DirQ should reach >90% of true sources, got {mean_recall:.3}");
    }

    #[test]
    fn dirq_cheaper_than_flooding() {
        let dirq = run_scenario(small(3));
        let flood = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..small(3) });
        let dc = dirq.cost_per_query().unwrap();
        let fc = flood.cost_per_query().unwrap();
        assert!(dc < fc, "DirQ per-query cost {dc:.1} should undercut flooding {fc:.1}");
    }

    #[test]
    fn flooding_cost_matches_analytic() {
        let r = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..small(4) });
        let measured = r.cost_per_query().unwrap();
        let analytic = r.flooding_cost_per_query();
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "flooding measured {measured:.1} vs analytic {analytic:.1} (rel {rel:.3})"
        );
    }

    #[test]
    fn flooding_reaches_everyone() {
        let r = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..small(5) });
        let mean_received = r.metrics.mean_over_queries(|o| o.received as f64).unwrap();
        // All nodes except the root receive every flooded query.
        assert!(
            (mean_received - (r.n_nodes - 1) as f64).abs() < 0.5,
            "flooding reached {mean_received:.1} of {} nodes",
            r.n_nodes - 1
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run_scenario(small(7));
        let b = run_scenario(small(7));
        assert_eq!(a.metrics.update_cost.tx, b.metrics.update_cost.tx);
        assert_eq!(a.metrics.outcomes.len(), b.metrics.outcomes.len());
        for (x, y) in a.metrics.outcomes.iter().zip(&b.metrics.outcomes) {
            assert_eq!(x.received, y.received);
            assert_eq!(x.should_receive, y.should_receive);
        }
        assert_eq!(a.mac_data_cost, b.mac_data_cost);
    }

    #[test]
    fn larger_delta_sends_fewer_updates() {
        let lo = run_scenario(ScenarioConfig { delta_policy: DeltaPolicy::Fixed(3.0), ..small(8) });
        let hi = run_scenario(ScenarioConfig { delta_policy: DeltaPolicy::Fixed(9.0), ..small(8) });
        assert!(
            hi.metrics.update_cost.tx < lo.metrics.update_cost.tx,
            "δ=9% ({}) should send fewer updates than δ=3% ({})",
            hi.metrics.update_cost.tx,
            lo.metrics.update_cost.tx
        );
    }

    #[test]
    fn category_costs_cover_mac_ledger() {
        let r = run_scenario(small(9));
        // The MAC data ledger counts every data message over the whole run;
        // category tallies skip the warm-up, so ledger >= categories.
        let categories = r.metrics.total_cost();
        assert!(r.mac_data_cost >= categories);
        assert!(categories > 0.0);
    }

    #[test]
    fn multi_sink_shortens_routes_and_still_answers_queries() {
        let base = ScenarioConfig { tree: TreeKind::Bfs, ..small(21) };
        let multi = run_scenario(ScenarioConfig { extra_sinks: 2, ..base.clone() });
        let single = run_scenario(base);
        // Nearest-sink attachment must not hurt reachability.
        let recall = multi.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
        assert!(recall > 0.9, "multi-sink recall degraded: {recall:.3}");
        // And the deployment keeps all nodes.
        assert_eq!(multi.n_nodes, single.n_nodes);
    }

    #[test]
    fn kary_tree_scenario_runs() {
        let r = run_scenario(ScenarioConfig {
            tree: TreeKind::CompleteKary { k: 2, d: 4 },
            epochs: 300,
            measure_from_epoch: 100,
            ..ScenarioConfig::paper(10)
        });
        assert_eq!(r.n_nodes, 31);
        assert_eq!(r.analytic.flooding, 91.0);
        assert!(r.queries_injected > 0);
    }

    #[test]
    fn churn_deaths_recovered_by_repair() {
        let r = run_scenario(ScenarioConfig {
            churn: ChurnSpec::RandomDeaths { deaths: 5, from_epoch: 100, until_epoch: 200 },
            epochs: 600,
            measure_from_epoch: 50,
            ..ScenarioConfig::paper(11)
        });
        assert!(r.mac_stats.deaths_detected > 0, "LMAC must notice the deaths");
        // Queries injected well after the churn window must still find
        // their sources.
        let late: Vec<f64> = r
            .metrics
            .outcomes
            .iter()
            .filter(|o| o.epoch >= 300)
            .map(|o| o.source_recall())
            .collect();
        assert!(!late.is_empty());
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 0.85, "post-churn recall {mean:.3} too low");
    }

    #[test]
    fn predictive_sampling_cuts_acquisitions() {
        use crate::sampling::{PredictiveConfig, SamplingStrategy};
        let baseline = run_scenario(small(14));
        let predictive = run_scenario(ScenarioConfig {
            sampling: SamplingStrategy::Predictive(PredictiveConfig::default()),
            ..small(14)
        });
        assert!(predictive.samples_skipped > 0, "predictive mode must skip something");
        let skip_ratio = predictive.samples_skipped as f64
            / (predictive.samples_taken + predictive.samples_skipped) as f64;
        assert!(skip_ratio > 0.2, "expected a meaningful sampling saving, got {skip_ratio:.3}");
        // Accuracy cost must stay bounded: recall within a few points.
        let base_recall = baseline.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
        let pred_recall = predictive.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
        assert!(
            pred_recall > base_recall - 0.1,
            "predictive sampling degraded recall too much: {base_recall:.3} -> {pred_recall:.3}"
        );
    }

    #[test]
    fn atc_policy_runs_and_adapts() {
        let r = run_scenario(ScenarioConfig {
            delta_policy: DeltaPolicy::Adaptive(crate::atc::AtcConfig::default()),
            epochs: 1500,
            measure_from_epoch: 500,
            ..ScenarioConfig::paper(12)
        });
        // δ must have moved away from the initial value on most nodes.
        let moved = r.final_delta_pcts.iter().skip(1).filter(|&&d| (d - 5.0).abs() > 0.5).count();
        assert!(moved > r.n_nodes / 2, "ATC should have adjusted most nodes' δ (moved: {moved})");
        assert!(!r.delta_trace.is_empty());
    }
}
