//! Range Tables — Section 4.1 of the paper.
//!
//! Per sensor type, every node stores one `[THmin, THmax]` tuple for itself
//! and one for each one-hop child:
//!
//! * **Own tuple** (Fig. 1): on acquiring reading `R`, set
//!   `THmin = R − δ`, `THmax = R + δ`; replace the tuple only when a new
//!   reading falls *outside* the current interval.
//! * **Aggregation** (Fig. 2): whenever the table changes, recompute
//!   `min(THmin)` and `max(THmax)` over all tuples.
//! * **Update rule** (Fig. 3): transmit an Update Message iff the new
//!   aggregate differs from the *previously transmitted* aggregate by more
//!   than `δ` at either end.
//!
//! ## Layout
//!
//! Child tuples are stored struct-of-arrays: `child_ids[]` / `child_min[]`
//! / `child_max[]`, kept sorted by child id. The two routing hot loops —
//! the aggregate recomputation after every table mutation and the
//! per-query child-overlap test — become branch-light sweeps over dense
//! `f64` arrays the compiler can vectorise, instead of walking
//! `(NodeId, RangeEntry)` pairs. Both sweeps visit children in ascending
//! id order, exactly as the old pair-vector did, so observable behaviour
//! (merge order, emitted child lists) is bit-identical.

use dirq_net::NodeId;

/// A `[THmin, THmax]` tuple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeEntry {
    /// Lower threshold `THmin`.
    pub min: f64,
    /// Upper threshold `THmax`.
    pub max: f64,
}

impl RangeEntry {
    /// The paper's Eq. 1/2: `[R − δ, R + δ]` around a reading.
    pub fn around(reading: f64, delta: f64) -> Self {
        debug_assert!(delta >= 0.0, "threshold must be non-negative");
        RangeEntry { min: reading - delta, max: reading + delta }
    }

    /// Whether `value` lies inside the interval (inclusive).
    #[inline]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.min && value <= self.max
    }

    /// Whether the interval overlaps `[lo, hi]` — DirQ's routing test.
    #[inline]
    pub fn overlaps(&self, lo: f64, hi: f64) -> bool {
        self.min <= hi && self.max >= lo
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &RangeEntry) -> RangeEntry {
        RangeEntry { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Whether either end moved by more than `delta` relative to `prev` —
    /// the Fig. 3 transmission test.
    pub fn differs_significantly(&self, prev: &RangeEntry, delta: f64) -> bool {
        (self.min - prev.min).abs() > delta || (self.max - prev.max).abs() > delta
    }
}

/// The per-sensor-type Range Table of one node.
#[derive(Clone, Debug, Default)]
pub struct RangeTable {
    /// This node's own tuple (`None`: the node does not carry the sensor).
    own: Option<RangeEntry>,
    /// Child ids, ascending. `child_min`/`child_max` are parallel arrays:
    /// `[child_min[i], child_max[i]]` is the aggregate tuple advertised by
    /// `child_ids[i]`.
    child_ids: Vec<NodeId>,
    /// Per-child `THmin`, parallel to `child_ids`.
    child_min: Vec<f64>,
    /// Per-child `THmax`, parallel to `child_ids`.
    child_max: Vec<f64>,
    /// The aggregate most recently transmitted up the tree
    /// (`prev_min(THmin)`, `prev_max(THmax)` in the paper).
    last_tx: Option<RangeEntry>,
}

impl RangeTable {
    /// An empty table.
    pub fn new() -> Self {
        RangeTable::default()
    }

    /// Apply a new own reading under threshold `delta` (Fig. 1). Returns
    /// `true` when the own tuple was (re)placed — i.e. the reading escaped
    /// the previous interval or there was none.
    pub fn observe_own(&mut self, reading: f64, delta: f64) -> bool {
        match &self.own {
            Some(entry) if entry.contains(reading) => false,
            _ => {
                self.own = Some(RangeEntry::around(reading, delta));
                true
            }
        }
    }

    /// Drop the own tuple (sensor removed).
    pub fn clear_own(&mut self) -> bool {
        self.own.take().is_some()
    }

    /// This node's own tuple.
    pub fn own(&self) -> Option<RangeEntry> {
        self.own
    }

    /// Insert or replace a child's aggregate tuple. Returns `true` if the
    /// stored value changed.
    pub fn set_child(&mut self, child: NodeId, entry: RangeEntry) -> bool {
        match self.child_ids.binary_search(&child) {
            Ok(i) => {
                if self.child_min[i] == entry.min && self.child_max[i] == entry.max {
                    false
                } else {
                    self.child_min[i] = entry.min;
                    self.child_max[i] = entry.max;
                    true
                }
            }
            Err(i) => {
                self.child_ids.insert(i, child);
                self.child_min.insert(i, entry.min);
                self.child_max.insert(i, entry.max);
                true
            }
        }
    }

    /// Remove a child's tuple; returns whether it was present.
    pub fn remove_child(&mut self, child: NodeId) -> bool {
        match self.child_ids.binary_search(&child) {
            Ok(i) => {
                self.child_ids.remove(i);
                self.child_min.remove(i);
                self.child_max.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// A child's stored tuple.
    pub fn child_entry(&self, child: NodeId) -> Option<RangeEntry> {
        self.child_ids
            .binary_search(&child)
            .ok()
            .map(|i| RangeEntry { min: self.child_min[i], max: self.child_max[i] })
    }

    /// Child ids with a stored tuple, ascending.
    pub fn child_ids(&self) -> &[NodeId] {
        &self.child_ids
    }

    /// All child tuples in ascending id order.
    pub fn child_entries(&self) -> impl Iterator<Item = (NodeId, RangeEntry)> + '_ {
        self.child_ids
            .iter()
            .zip(self.child_min.iter().zip(&self.child_max))
            .map(|(&id, (&min, &max))| (id, RangeEntry { min, max }))
    }

    /// Visit every child whose tuple overlaps `[lo, hi]` — DirQ's per-query
    /// routing test — in ascending id order. The interval compares run as a
    /// branch-light sweep over the parallel `child_min`/`child_max` arrays.
    #[inline]
    pub fn for_overlapping_children(&self, lo: f64, hi: f64, mut visit: impl FnMut(NodeId)) {
        for i in 0..self.child_ids.len() {
            // Non-short-circuiting `&` keeps the test a pair of compares the
            // compiler can batch; the branch is on the combined mask only.
            if (self.child_min[i] <= hi) & (self.child_max[i] >= lo) {
                visit(self.child_ids[i]);
            }
        }
    }

    /// Fig. 2: `min(THmin)` / `max(THmax)` over the own tuple and all
    /// child tuples. `None` when the table holds nothing.
    pub fn aggregate(&self) -> Option<RangeEntry> {
        if self.child_ids.is_empty() {
            return self.own;
        }
        let mut min = f64::INFINITY;
        for &m in &self.child_min {
            min = min.min(m);
        }
        let mut max = f64::NEG_INFINITY;
        for &m in &self.child_max {
            max = max.max(m);
        }
        let children = RangeEntry { min, max };
        Some(match self.own {
            Some(own) => own.hull(&children),
            None => children,
        })
    }

    /// Fig. 3: the Update Message to transmit now, if the aggregate moved
    /// more than `delta` from the previously transmitted aggregate (or was
    /// never transmitted). Does **not** mark it transmitted.
    pub fn pending_update(&self, delta: f64) -> Option<RangeEntry> {
        let agg = self.aggregate()?;
        match &self.last_tx {
            None => Some(agg),
            Some(prev) if agg.differs_significantly(prev, delta) => Some(agg),
            Some(_) => None,
        }
    }

    /// Whether a Retract should be transmitted: the table is empty but an
    /// aggregate was previously advertised.
    pub fn pending_retract(&self) -> bool {
        self.aggregate().is_none() && self.last_tx.is_some()
    }

    /// Record that `entry` was transmitted up the tree.
    pub fn mark_transmitted(&mut self, entry: RangeEntry) {
        self.last_tx = Some(entry);
    }

    /// Record that a Retract was transmitted.
    pub fn mark_retracted(&mut self) {
        self.last_tx = None;
    }

    /// The previously transmitted aggregate.
    pub fn last_transmitted(&self) -> Option<RangeEntry> {
        self.last_tx
    }

    /// Whether the table holds neither an own tuple nor child tuples.
    pub fn is_empty(&self) -> bool {
        self.own.is_none() && self.child_ids.is_empty()
    }

    /// Number of tuples stored (own + children) — the paper's `n + 1`.
    pub fn len(&self) -> usize {
        usize::from(self.own.is_some()) + self.child_ids.len()
    }

    /// Write the full table state to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        snap_entry(w, self.own);
        w.len_of(self.child_ids.len());
        for id in &self.child_ids {
            w.u32(id.0);
        }
        w.f64s(&self.child_min);
        w.f64s(&self.child_max);
        snap_entry(w, self.last_tx);
    }

    /// Rebuild a table captured by [`RangeTable::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        let own = unsnap_entry(r)?;
        let pos = r.position();
        let n = r.seq_len(4)?;
        let child_ids: Vec<NodeId> =
            (0..n).map(|_| r.u32().map(NodeId)).collect::<Result<_, _>>()?;
        let child_min = r.f64s()?;
        let child_max = r.f64s()?;
        if child_min.len() != n || child_max.len() != n {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "range table child arrays disagree in length",
            });
        }
        if !child_ids.windows(2).all(|p| p[0] < p[1]) {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "range table child ids not strictly ascending",
            });
        }
        let last_tx = unsnap_entry(r)?;
        Ok(RangeTable { own, child_ids, child_min, child_max, last_tx })
    }
}

fn snap_entry(w: &mut dirq_sim::SnapWriter, e: Option<RangeEntry>) {
    w.bool(e.is_some());
    if let Some(e) = e {
        w.f64(e.min);
        w.f64(e.max);
    }
}

fn unsnap_entry(
    r: &mut dirq_sim::SnapReader<'_>,
) -> Result<Option<RangeEntry>, dirq_sim::SnapError> {
    Ok(if r.bool()? { Some(RangeEntry { min: r.f64()?, max: r.f64()? }) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entry_around_reading() {
        let e = RangeEntry::around(20.0, 0.5);
        assert_eq!(e, RangeEntry { min: 19.5, max: 20.5 });
        assert!(e.contains(20.0) && e.contains(19.5) && e.contains(20.5));
        assert!(!e.contains(19.49) && !e.contains(20.51));
    }

    #[test]
    fn overlap_tests() {
        let e = RangeEntry { min: 10.0, max: 20.0 };
        assert!(e.overlaps(5.0, 10.0));
        assert!(e.overlaps(20.0, 25.0));
        assert!(e.overlaps(12.0, 13.0));
        assert!(e.overlaps(0.0, 100.0));
        assert!(!e.overlaps(20.1, 30.0));
        assert!(!e.overlaps(0.0, 9.9));
    }

    #[test]
    fn own_tuple_replaced_only_on_escape() {
        let mut t = RangeTable::new();
        assert!(t.observe_own(20.0, 1.0)); // first reading always sets
        assert_eq!(t.own(), Some(RangeEntry { min: 19.0, max: 21.0 }));
        // Readings inside [19, 21] leave the tuple unchanged (paper: only
        // major changes are reflected).
        assert!(!t.observe_own(20.9, 1.0));
        assert!(!t.observe_own(19.1, 1.0));
        assert_eq!(t.own(), Some(RangeEntry { min: 19.0, max: 21.0 }));
        // Escape re-centres the tuple.
        assert!(t.observe_own(22.0, 1.0));
        assert_eq!(t.own(), Some(RangeEntry { min: 21.0, max: 23.0 }));
    }

    #[test]
    fn aggregate_spans_own_and_children() {
        let mut t = RangeTable::new();
        t.observe_own(20.0, 1.0); // [19, 21]
        t.set_child(NodeId(2), RangeEntry { min: 15.0, max: 18.0 });
        t.set_child(NodeId(3), RangeEntry { min: 22.0, max: 30.0 });
        assert_eq!(t.aggregate(), Some(RangeEntry { min: 15.0, max: 30.0 }));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn first_aggregate_is_always_pending() {
        let mut t = RangeTable::new();
        assert_eq!(t.pending_update(1.0), None, "empty table has nothing to send");
        t.observe_own(20.0, 1.0);
        assert_eq!(t.pending_update(1.0), Some(RangeEntry { min: 19.0, max: 21.0 }));
    }

    #[test]
    fn update_fires_only_beyond_delta() {
        let mut t = RangeTable::new();
        t.observe_own(20.0, 1.0);
        let agg = t.pending_update(1.0).unwrap();
        t.mark_transmitted(agg);
        assert_eq!(t.pending_update(1.0), None);
        // Move min/max by exactly delta: NOT significant (strict >).
        t.set_child(NodeId(1), RangeEntry { min: 18.0, max: 21.0 }); // min 19→18 (Δ=1)
        assert_eq!(t.pending_update(1.0), None);
        // Move beyond delta.
        t.set_child(NodeId(1), RangeEntry { min: 17.9, max: 21.0 });
        assert_eq!(t.pending_update(1.0), Some(RangeEntry { min: 17.9, max: 21.0 }));
    }

    #[test]
    fn shrinking_aggregate_also_triggers() {
        let mut t = RangeTable::new();
        t.set_child(NodeId(1), RangeEntry { min: 0.0, max: 50.0 });
        t.mark_transmitted(t.aggregate().unwrap());
        // Child range collapses: min rises by 30 > delta.
        t.set_child(NodeId(1), RangeEntry { min: 30.0, max: 50.0 });
        assert!(t.pending_update(2.0).is_some());
    }

    #[test]
    fn retract_lifecycle() {
        let mut t = RangeTable::new();
        t.set_child(NodeId(4), RangeEntry { min: 1.0, max: 2.0 });
        t.mark_transmitted(t.aggregate().unwrap());
        assert!(!t.pending_retract());
        t.remove_child(NodeId(4));
        assert!(t.is_empty());
        assert!(t.pending_retract());
        t.mark_retracted();
        assert!(!t.pending_retract());
        assert_eq!(t.pending_update(1.0), None);
    }

    #[test]
    fn child_crud() {
        let mut t = RangeTable::new();
        assert!(t.set_child(NodeId(5), RangeEntry { min: 1.0, max: 2.0 }));
        assert!(!t.set_child(NodeId(5), RangeEntry { min: 1.0, max: 2.0 }), "no-op set");
        assert!(t.set_child(NodeId(5), RangeEntry { min: 1.0, max: 3.0 }));
        assert!(t.child_entry(NodeId(5)).unwrap().max == 3.0);
        assert!(t.remove_child(NodeId(5)));
        assert!(!t.remove_child(NodeId(5)));
        assert_eq!(t.child_entry(NodeId(5)), None);
    }

    #[test]
    fn clear_own_leaves_children() {
        let mut t = RangeTable::new();
        t.observe_own(10.0, 1.0);
        t.set_child(NodeId(1), RangeEntry { min: 0.0, max: 1.0 });
        assert!(t.clear_own());
        assert!(!t.clear_own());
        assert_eq!(t.aggregate(), Some(RangeEntry { min: 0.0, max: 1.0 }));
    }

    #[test]
    fn overlap_sweep_visits_ascending() {
        let mut t = RangeTable::new();
        t.set_child(NodeId(9), RangeEntry { min: 0.0, max: 10.0 });
        t.set_child(NodeId(2), RangeEntry { min: 5.0, max: 15.0 });
        t.set_child(NodeId(5), RangeEntry { min: 50.0, max: 60.0 });
        let mut hit = Vec::new();
        t.for_overlapping_children(8.0, 20.0, |c| hit.push(c));
        assert_eq!(hit, vec![NodeId(2), NodeId(9)]);
    }

    proptest! {
        /// The aggregate always contains every stored tuple.
        #[test]
        fn prop_aggregate_is_hull(
            own in proptest::option::of((-100.0f64..100.0, 0.0f64..5.0)),
            children in proptest::collection::vec((0u32..20, -100.0f64..100.0, 0.0f64..10.0), 0..10),
        ) {
            let mut t = RangeTable::new();
            if let Some((r, d)) = own {
                t.observe_own(r, d);
            }
            for (id, lo, w) in &children {
                t.set_child(NodeId(*id), RangeEntry { min: *lo, max: lo + w });
            }
            if let Some(agg) = t.aggregate() {
                if let Some(o) = t.own() {
                    prop_assert!(agg.min <= o.min && agg.max >= o.max);
                }
                for (_, e) in t.child_entries() {
                    prop_assert!(agg.min <= e.min && agg.max >= e.max);
                }
            } else {
                prop_assert!(t.is_empty());
            }
        }

        /// After mark_transmitted, pending_update fires iff the aggregate
        /// moved by more than delta at either end.
        #[test]
        fn prop_update_rule_exact(
            base in -50.0f64..50.0,
            shift in -20.0f64..20.0,
            delta in 0.01f64..5.0,
        ) {
            let mut t = RangeTable::new();
            t.set_child(NodeId(1), RangeEntry { min: base, max: base + 10.0 });
            t.mark_transmitted(t.aggregate().unwrap());
            t.set_child(NodeId(1), RangeEntry { min: base + shift, max: base + 10.0 + shift });
            let expect_fire = shift.abs() > delta;
            prop_assert_eq!(t.pending_update(delta).is_some(), expect_fire);
        }

        /// Own-tuple escape semantics: after observing r, observing any r'
        /// within ±delta never replaces the tuple.
        #[test]
        fn prop_no_replacement_within_delta(
            r in -100.0f64..100.0,
            offset in -1.0f64..1.0,
            delta in 0.5f64..5.0,
        ) {
            let mut t = RangeTable::new();
            t.observe_own(r, delta);
            let inside = r + offset * delta; // |offset| <= 1 ⇒ inside window
            prop_assert!(!t.observe_own(inside, delta));
        }
    }
}
