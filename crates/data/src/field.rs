//! Spatially correlated base fields.
//!
//! "Sensor values of nodes located close to one another are spatially
//! related" — we realise this with a smooth random field: a sum of
//! Gaussian radial-basis bumps with random centres, amplitudes and a
//! characteristic correlation length. Two nodes much closer than the
//! correlation length see nearly identical base values; far-apart nodes are
//! nearly independent.

use dirq_net::Position;
use dirq_sim::SimRng;
use rand::Rng;

/// One Gaussian bump.
#[derive(Clone, Copy, Debug)]
struct Bump {
    center: Position,
    amplitude: f64,
    /// 1/(2σ²), precomputed.
    inv_two_sigma_sq: f64,
}

/// Spatial structure of a field.
#[derive(Clone, Debug)]
enum FieldKind {
    /// Smooth sum of Gaussian bumps.
    Smooth(Vec<Bump>),
    /// Plateaued microclimates: the value is the level of the nearest cell
    /// centre (a Voronoi partition). Models distinct habitats — meadow,
    /// canopy shade, creek bed — whose readings cluster tightly around
    /// well-separated levels.
    Cellular(Vec<(Position, f64)>),
}

/// A scalar field over the deployment plane.
#[derive(Clone, Debug)]
pub struct SpatialField {
    base: f64,
    kind: FieldKind,
}

impl SpatialField {
    /// A constant field (no spatial structure).
    pub fn constant(base: f64) -> Self {
        SpatialField { base, kind: FieldKind::Smooth(Vec::new()) }
    }

    /// Cellular field: `n_cells` Voronoi cells whose levels are evenly
    /// spaced across `[-amplitude, amplitude]` (±20 % jitter), assigned to
    /// random cell positions. Values are constant within a cell, so
    /// simultaneous readings cluster around well-*separated* levels — the
    /// even spacing guarantees a minimum gap between adjacent clusters.
    pub fn cellular(
        base: f64,
        amplitude: f64,
        n_cells: usize,
        side: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(n_cells > 0, "need at least one cell");
        assert!(side > 0.0, "field side must be positive");
        let gap = if n_cells > 1 { 2.0 * amplitude / (n_cells - 1) as f64 } else { 0.0 };
        let mut levels: Vec<f64> = (0..n_cells)
            .map(|i| {
                let centre = -amplitude + gap * i as f64;
                let jitter = if gap > 0.0 { rng.gen_range(-0.2 * gap..0.2 * gap) } else { 0.0 };
                centre + jitter
            })
            .collect();
        // Shuffle so spatially adjacent cells do not get adjacent levels.
        for i in (1..levels.len()).rev() {
            let j = rng.gen_range(0..=i);
            levels.swap(i, j);
        }
        let cells = levels
            .into_iter()
            .map(|level| (Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)), level))
            .collect();
        SpatialField { base, kind: FieldKind::Cellular(cells) }
    }

    /// Random field over a `side × side` area: `n_bumps` bumps with
    /// amplitudes uniform in `[-amplitude, amplitude]` and standard
    /// deviation `correlation_len`.
    pub fn random(
        base: f64,
        amplitude: f64,
        correlation_len: f64,
        n_bumps: usize,
        side: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(correlation_len > 0.0, "correlation length must be positive");
        assert!(side > 0.0, "field side must be positive");
        let bumps = (0..n_bumps)
            .map(|_| Bump {
                center: Position::new(
                    rng.gen_range(-0.2 * side..1.2 * side),
                    rng.gen_range(-0.2 * side..1.2 * side),
                ),
                amplitude: rng.gen_range(-amplitude..=amplitude),
                inv_two_sigma_sq: 1.0 / (2.0 * correlation_len * correlation_len),
            })
            .collect();
        SpatialField { base, kind: FieldKind::Smooth(bumps) }
    }

    /// Field value at `pos`.
    pub fn value(&self, pos: &Position) -> f64 {
        match &self.kind {
            FieldKind::Smooth(bumps) => {
                let mut v = self.base;
                for b in bumps {
                    let d2 = pos.distance_sq(&b.center);
                    v += b.amplitude * (-d2 * b.inv_two_sigma_sq).exp();
                }
                v
            }
            FieldKind::Cellular(cells) => {
                let mut best = f64::INFINITY;
                let mut level = 0.0;
                for (c, l) in cells {
                    let d2 = pos.distance_sq(c);
                    if d2 < best {
                        best = d2;
                        level = *l;
                    }
                }
                self.base + level
            }
        }
    }

    /// The flat baseline.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Empirical correlation diagnostic: mean absolute field difference at
    /// a given separation, estimated from `samples` random pairs. Used by
    /// tests to verify "closer ⇒ more similar".
    pub fn mean_abs_difference(
        &self,
        separation: f64,
        side: f64,
        samples: usize,
        rng: &mut SimRng,
    ) -> f64 {
        let mut total = 0.0;
        for _ in 0..samples {
            let a = Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let b = Position::new(a.x + separation * angle.cos(), a.y + separation * angle.sin());
            total += (self.value(&a) - self.value(&b)).abs();
        }
        total / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    fn rng(label: &str) -> SimRng {
        RngFactory::new(21).stream(label)
    }

    #[test]
    fn constant_field_everywhere_equal() {
        let f = SpatialField::constant(42.0);
        assert_eq!(f.value(&Position::new(0.0, 0.0)), 42.0);
        assert_eq!(f.value(&Position::new(1e6, -3.0)), 42.0);
    }

    #[test]
    fn random_field_is_deterministic_per_rng() {
        let f1 = SpatialField::random(10.0, 5.0, 20.0, 8, 100.0, &mut rng("field"));
        let f2 = SpatialField::random(10.0, 5.0, 20.0, 8, 100.0, &mut rng("field"));
        let p = Position::new(33.0, 71.0);
        assert_eq!(f1.value(&p), f2.value(&p));
    }

    #[test]
    fn nearby_points_more_similar_than_distant() {
        let f = SpatialField::random(20.0, 6.0, 25.0, 10, 100.0, &mut rng("corr"));
        let mut r = rng("corr-sample");
        let near = f.mean_abs_difference(2.0, 100.0, 4000, &mut r);
        let far = f.mean_abs_difference(80.0, 100.0, 4000, &mut r);
        assert!(near < far * 0.5, "spatial correlation too weak: near={near:.3} far={far:.3}");
    }

    #[test]
    fn amplitude_bounds_field_excursion() {
        let f = SpatialField::random(0.0, 1.0, 10.0, 5, 50.0, &mut rng("amp"));
        // Value is bounded by the sum of |amplitudes| ≤ n_bumps × amplitude.
        for i in 0..100 {
            let p = Position::new((i % 10) as f64 * 5.0, (i / 10) as f64 * 5.0);
            assert!(f.value(&p).abs() <= 5.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "correlation length must be positive")]
    fn zero_correlation_rejected() {
        let _ = SpatialField::random(0.0, 1.0, 0.0, 1, 10.0, &mut rng("bad"));
    }

    #[test]
    fn cellular_values_come_from_cell_levels() {
        let f = SpatialField::cellular(100.0, 10.0, 5, 100.0, &mut rng("cells"));
        // Sample a grid: every value must lie within base ± amplitude and
        // the number of distinct values must not exceed the cell count.
        let mut values: Vec<f64> = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let v = f.value(&Position::new(i as f64 * 5.0, j as f64 * 5.0));
                assert!((90.0..=110.0).contains(&v));
                values.push(v);
            }
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        assert!(values.len() <= 5, "at most 5 distinct plateau levels, got {}", values.len());
        assert!(values.len() >= 2, "field should have spatial structure");
    }

    #[test]
    fn cellular_is_locally_constant() {
        let f = SpatialField::cellular(0.0, 10.0, 4, 100.0, &mut rng("cells2"));
        // Two points a hair apart are almost surely in the same cell.
        let a = Position::new(40.0, 40.0);
        let b = Position::new(40.01, 40.0);
        assert_eq!(f.value(&a), f.value(&b));
    }

    #[test]
    #[should_panic(expected = "need at least one cell")]
    fn cellular_zero_cells_rejected() {
        let _ = SpatialField::cellular(0.0, 1.0, 0, 10.0, &mut rng("bad2"));
    }
}
