//! The synthetic sensor world.
//!
//! [`SensorWorld`] combines, per sensor type, a spatial base field, a
//! diurnal cycle, a regional AR(1) drift, per-node local AR(1) processes
//! and white measurement noise, producing one reading per (node, type) per
//! epoch:
//!
//! ```text
//! reading(n, t, e) = spatial_t(pos_n) + diurnal_t(e) + regional_t(e)
//!                    + local_{n,t}(e) + noise
//! ```
//!
//! Readings of nodes without the sensor are `None`. The world is advanced
//! once per epoch by the scenario engine and is the ground truth the
//! accuracy metrics compare against.

use dirq_net::Topology;
use dirq_sim::rng::sample_normal;
use dirq_sim::{RngFactory, SimRng};

use crate::field::SpatialField;
use crate::sensor::{SensorAssignment, SensorCatalog, SensorType};
use crate::temporal::{Ar1, Diurnal};

/// Spatial-structure style of a sensor type's base field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldStyle {
    /// Smooth sum of Gaussian bumps (gradual gradients).
    Smooth,
    /// Plateaued Voronoi microclimates (tightly clustered value levels) —
    /// the default: it matches the regime the paper's accuracy numbers
    /// imply, where query windows fall between well-separated clusters.
    Cellular,
}

/// Generator parameters for one sensor type.
#[derive(Clone, Debug)]
pub struct SensorTypeConfig {
    /// Baseline value (e.g. 20 °C).
    pub base: f64,
    /// Spatial structure style.
    pub field_style: FieldStyle,
    /// Spatial bump/cell amplitude.
    pub spatial_amplitude: f64,
    /// Spatial correlation length, metres (smooth fields only).
    pub correlation_len: f64,
    /// Number of spatial bumps / Voronoi cells.
    pub n_bumps: usize,
    /// Diurnal amplitude.
    pub diurnal_amplitude: f64,
    /// Diurnal period, epochs.
    pub diurnal_period: f64,
    /// Regional AR(1) persistence.
    pub regional_phi: f64,
    /// Regional AR(1) innovation σ.
    pub regional_sigma: f64,
    /// Node-local AR(1) persistence.
    pub local_phi: f64,
    /// Node-local AR(1) innovation σ.
    pub local_sigma: f64,
    /// White measurement-noise σ.
    pub noise_sigma: f64,
}

impl SensorTypeConfig {
    /// Temperature-like defaults (°C).
    ///
    /// The tuning philosophy for all four types: a **clustered** spatial
    /// field (few broad bumps → distinct microclimates whose value levels
    /// are well separated), **small node-local jitter** (so value clusters
    /// stay tight and δ-padding rarely crosses a cluster gap), and a
    /// pronounced **common drift** (diurnal + slow regional wander) that
    /// moves all nodes together — driving regular Range-Table escapes at
    /// any δ, which is what gives Fig. 6 its update traffic, without
    /// blurring the spatial structure that makes directed routing accurate.
    pub fn temperature() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 20.0,
            spatial_amplitude: 7.0,
            correlation_len: 35.0,
            n_bumps: 10,
            diurnal_amplitude: 6.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.05,
            local_phi: 0.9,
            local_sigma: 0.02,
            noise_sigma: 0.02,
        }
    }

    /// Relative-humidity-like defaults (%RH).
    pub fn humidity() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 60.0,
            spatial_amplitude: 12.0,
            correlation_len: 40.0,
            n_bumps: 10,
            diurnal_amplitude: -10.0, // anti-phase with temperature
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.1,
            local_phi: 0.9,
            local_sigma: 0.05,
            noise_sigma: 0.04,
        }
    }

    /// Illuminance-like defaults (arbitrary lux scale).
    pub fn light() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 500.0,
            spatial_amplitude: 250.0,
            correlation_len: 30.0,
            n_bumps: 12,
            diurnal_amplitude: 200.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 2.0,
            local_phi: 0.85,
            local_sigma: 1.5,
            noise_sigma: 1.5,
        }
    }

    /// Expected *cross-sectional* span of readings under this config — the
    /// typical spread of simultaneous readings across nodes — used as the
    /// reference against which percentage thresholds (δ %) are defined.
    ///
    /// Shared components (diurnal cycle, regional drift) move every node
    /// together and therefore do not separate nodes from each other; the
    /// spread at any instant comes from the spatial field, the node-local
    /// AR(1) processes and measurement noise.
    pub fn expected_span(&self) -> f64 {
        let local_sd = self.local_sigma / (1.0 - self.local_phi * self.local_phi).sqrt();
        2.0 * self.spatial_amplitude.abs() + 4.0 * local_sd + 4.0 * self.noise_sigma
    }

    /// CO₂-like defaults (ppm).
    pub fn co2() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 420.0,
            spatial_amplitude: 60.0,
            correlation_len: 30.0,
            n_bumps: 10,
            diurnal_amplitude: 30.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.6,
            local_phi: 0.92,
            local_sigma: 0.3,
            noise_sigma: 0.3,
        }
    }
}

/// Whole-world generator configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// One config per sensor type, indexed by [`SensorType`].
    pub types: Vec<SensorTypeConfig>,
    /// Side of the deployment square (must match the topology placement).
    pub side: f64,
}

impl WorldConfig {
    /// Reference spans per type (see [`SensorTypeConfig::expected_span`]).
    pub fn reference_spans(&self) -> Vec<f64> {
        self.types.iter().map(SensorTypeConfig::expected_span).collect()
    }

    /// The paper's 4-type environmental scenario.
    pub fn environmental(side: f64) -> Self {
        WorldConfig {
            types: vec![
                SensorTypeConfig::temperature(),
                SensorTypeConfig::humidity(),
                SensorTypeConfig::light(),
                SensorTypeConfig::co2(),
            ],
            side,
        }
    }
}

/// Per-type dynamic state.
struct TypeState {
    /// `field.value(position(node))` — the field is static, so its
    /// per-node evaluation (a sum over every bump/cell) is hoisted out of
    /// the per-epoch loop and the field itself dropped after construction.
    field_at_node: Vec<f64>,
    diurnal: Diurnal,
    regional: Ar1,
    local: Vec<Ar1>,
    noise_sigma: f64,
}

/// The synthetic environment: per-epoch readings for every (node, type).
pub struct SensorWorld {
    catalog: SensorCatalog,
    assignment: SensorAssignment,
    states: Vec<TypeState>,
    /// `readings[type][node]`, `NaN` = node lacks the sensor.
    readings: Vec<Vec<f64>>,
    epoch: u64,
    rng: SimRng,
}

impl SensorWorld {
    /// Build a world over `topo` with the given catalog/assignment.
    pub fn new(
        config: &WorldConfig,
        catalog: SensorCatalog,
        assignment: SensorAssignment,
        topo: &Topology,
        rng_factory: &RngFactory,
    ) -> Self {
        assert_eq!(
            config.types.len(),
            catalog.len(),
            "one SensorTypeConfig per catalog type required"
        );
        assert_eq!(assignment.len(), topo.len(), "assignment size must match topology");
        let n = topo.len();
        let mut field_rng = rng_factory.stream("world-fields");
        let states: Vec<TypeState> = config
            .types
            .iter()
            .map(|c| {
                let field = match c.field_style {
                    FieldStyle::Smooth => SpatialField::random(
                        c.base,
                        c.spatial_amplitude,
                        c.correlation_len,
                        c.n_bumps,
                        config.side,
                        &mut field_rng,
                    ),
                    FieldStyle::Cellular => SpatialField::cellular(
                        c.base,
                        c.spatial_amplitude,
                        c.n_bumps,
                        config.side,
                        &mut field_rng,
                    ),
                };
                let field_at_node =
                    (0..n).map(|i| field.value(&topo.position(node_id(i)))).collect();
                TypeState {
                    field_at_node,
                    diurnal: if c.diurnal_amplitude == 0.0 {
                        Diurnal::none()
                    } else {
                        Diurnal::new(c.diurnal_amplitude, c.diurnal_period, 0.0)
                    },
                    regional: Ar1::new(c.regional_phi, c.regional_sigma),
                    local: (0..n).map(|_| Ar1::new(c.local_phi, c.local_sigma)).collect(),
                    noise_sigma: c.noise_sigma,
                }
            })
            .collect();
        let mut world = SensorWorld {
            readings: vec![vec![f64::NAN; n]; states.len()],
            catalog,
            assignment,
            states,
            epoch: 0,
            rng: rng_factory.stream("world-dynamics"),
        };
        world.regenerate_readings(topo);
        world
    }

    /// Sensor catalog in use.
    pub fn catalog(&self) -> &SensorCatalog {
        &self.catalog
    }

    /// Node-to-sensor assignment.
    pub fn assignment(&self) -> &SensorAssignment {
        &self.assignment
    }

    /// Mutable assignment (for runtime sensor addition experiments).
    pub fn assignment_mut(&mut self) -> &mut SensorAssignment {
        &mut self.assignment
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance to the next epoch: step every temporal process and draw the
    /// new readings.
    pub fn advance_epoch(&mut self, topo: &Topology) {
        self.epoch += 1;
        for state in &mut self.states {
            state.regional.step(&mut self.rng);
            for l in &mut state.local {
                l.step(&mut self.rng);
            }
        }
        self.regenerate_readings(topo);
    }

    fn regenerate_readings(&mut self, topo: &Topology) {
        for (t, state) in self.states.iter().enumerate() {
            let diurnal = state.diurnal.value(self.epoch);
            let regional = state.regional.value();
            for node in 0..topo.len() {
                self.readings[t][node] = if self.assignment.has(node, SensorType(t as u8)) {
                    // Same summation order as the original formulation —
                    // float addition is not associative and fixed-seed runs
                    // must stay bit-identical.
                    state.field_at_node[node]
                        + diurnal
                        + regional
                        + state.local[node].value()
                        + sample_normal(&mut self.rng, 0.0, state.noise_sigma)
                } else {
                    f64::NAN
                };
            }
        }
    }

    /// The reading node `node` acquired this epoch for `t`
    /// (`None` if it lacks the sensor).
    pub fn reading(&self, node: usize, t: SensorType) -> Option<f64> {
        let v = *self.readings.get(t.index())?.get(node)?;
        (!v.is_nan()).then_some(v)
    }

    /// All current readings for `t` (`NaN` where absent).
    pub fn readings(&self, t: SensorType) -> &[f64] {
        &self.readings[t.index()]
    }

    /// Observed min/max over nodes carrying `t` this epoch.
    pub fn value_range(&self, t: SensorType) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.readings[t.index()] {
            if !v.is_nan() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }
}

#[inline]
fn node_id(i: usize) -> dirq_net::NodeId {
    dirq_net::NodeId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_net::placement::{Placement, SinkPlacement};
    use dirq_net::radio::UnitDisk;

    fn build_world(seed: u64) -> (SensorWorld, Topology) {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("topo");
        let topo = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            200,
        )
        .unwrap();
        let catalog = SensorCatalog::environmental();
        let assignment = SensorAssignment::heterogeneous(50, 4, 0.6, &mut f.stream("assign"));
        let world =
            SensorWorld::new(&WorldConfig::environmental(100.0), catalog, assignment, &topo, &f);
        (world, topo)
    }

    #[test]
    fn readings_follow_assignment() {
        let (world, topo) = build_world(31);
        let t = SensorType(0);
        for node in 0..topo.len() {
            let has = world.assignment().has(node, t);
            assert_eq!(world.reading(node, t).is_some(), has, "node {node}");
        }
        // Root has no sensors.
        for t in world.catalog().types() {
            assert!(world.reading(0, t).is_none());
        }
    }

    #[test]
    fn epoch_advances_and_readings_change() {
        let (mut world, topo) = build_world(32);
        let t = SensorType(0);
        let carrier = world.assignment().carriers(t)[0];
        let before = world.reading(carrier, t).unwrap();
        world.advance_epoch(&topo);
        assert_eq!(world.epoch(), 1);
        let after = world.reading(carrier, t).unwrap();
        assert_ne!(before, after, "noise + AR(1) must move readings");
    }

    #[test]
    fn temporal_correlation_consecutive_epochs() {
        let (mut world, topo) = build_world(33);
        let t = SensorType(0);
        let carriers = world.assignment().carriers(t);
        // Mean absolute per-epoch change must be far below the overall
        // spread of values across space — i.e. time series are smooth.
        let mut step_change = 0.0;
        let mut count = 0;
        let mut prev: Vec<Option<f64>> = carriers.iter().map(|&c| world.reading(c, t)).collect();
        for _ in 0..200 {
            world.advance_epoch(&topo);
            for (i, &c) in carriers.iter().enumerate() {
                let cur = world.reading(c, t).unwrap();
                if let Some(p) = prev[i] {
                    step_change += (cur - p).abs();
                    count += 1;
                }
                prev[i] = Some(cur);
            }
        }
        let mean_step = step_change / count as f64;
        let (lo, hi) = world.value_range(t).unwrap();
        assert!(
            mean_step < (hi - lo) * 0.5,
            "per-epoch change {mean_step:.3} too large vs spread {:.3}",
            hi - lo
        );
    }

    #[test]
    fn spatial_correlation_of_readings() {
        let (world, topo) = build_world(34);
        let t = SensorType(1);
        let carriers = world.assignment().carriers(t);
        // Compare mean |Δreading| between close pairs and far pairs.
        let mut near = (0.0, 0);
        let mut far = (0.0, 0);
        for (i, &a) in carriers.iter().enumerate() {
            for &b in &carriers[i + 1..] {
                let d = topo.position(node_id(a)).distance(&topo.position(node_id(b)));
                let dv = (world.reading(a, t).unwrap() - world.reading(b, t).unwrap()).abs();
                if d < 20.0 {
                    near = (near.0 + dv, near.1 + 1);
                } else if d > 60.0 {
                    far = (far.0 + dv, far.1 + 1);
                }
            }
        }
        assert!(near.1 > 0 && far.1 > 0, "need both near and far pairs");
        let near_mean = near.0 / near.1 as f64;
        let far_mean = far.0 / far.1 as f64;
        assert!(
            near_mean < far_mean,
            "near pairs ({near_mean:.3}) should differ less than far pairs ({far_mean:.3})"
        );
    }

    #[test]
    fn value_range_brackets_all_readings() {
        let (world, _) = build_world(35);
        for t in world.catalog().types() {
            let (lo, hi) = world.value_range(t).unwrap();
            for node in 0..world.assignment().len() {
                if let Some(v) = world.reading(node, t) {
                    assert!(v >= lo && v <= hi);
                }
            }
        }
    }

    #[test]
    fn diurnal_cycle_visible_in_long_run() {
        let (mut world, topo) = build_world(36);
        let t = SensorType(0); // temperature
        let period = SensorTypeConfig::temperature().diurnal_period as u64;
        let carrier = world.assignment().carriers(t)[0];
        let mut quarter = 0.0;
        let mut three_quarter = 0.0;
        for e in 1..=period {
            world.advance_epoch(&topo);
            if e == period / 4 {
                quarter = world.reading(carrier, t).unwrap();
            }
            if e == 3 * period / 4 {
                three_quarter = world.reading(carrier, t).unwrap();
            }
        }
        // Peak vs trough differ by ~2×amplitude = 12; AR/noise is ≪ that.
        assert!(
            quarter - three_quarter > 4.0,
            "diurnal swing not visible: peak {quarter:.2} trough {three_quarter:.2}"
        );
    }
}
