//! The synthetic sensor world.
//!
//! [`SensorWorld`] combines, per sensor type, a spatial base field, a
//! diurnal cycle, a regional AR(1) drift, per-node local AR(1) processes
//! and white measurement noise, producing one reading per (node, type) per
//! epoch:
//!
//! ```text
//! reading(n, t, e) = spatial_t(pos_n) + diurnal_t(e) + regional_t(e)
//!                    + local_{n,t}(e) + noise
//! ```
//!
//! Readings of nodes without the sensor are `None`. The world is advanced
//! once per epoch by the scenario engine and is the ground truth the
//! accuracy metrics compare against.
//!
//! ## Split RNG streams and the parallel advance
//!
//! The shared components (diurnal cycle, regional AR(1)) run on one
//! seeded stream **per type**; every `(node, type)` local AR(1) process
//! and its measurement noise run on their own **counter-based stream**
//! ([`StreamRng`]), keyed by `(type, node)` and repositioned to a fixed
//! per-epoch counter offset. Three properties fall out:
//!
//! * **lazy per-carrier generation** — a node without the sensor never
//!   draws, and skipping it cannot shift any other stream;
//! * **stream isolation** — adding/removing a sensor (or churn) never
//!   perturbs another `(node, type)` sequence;
//! * **order-free parallelism** — the per-epoch advance shards across the
//!   [`WorkerPool`] by node range and is **bit-identical at any worker
//!   count by construction**: each cell's value is a pure function of its
//!   own key, epoch and local AR(1) state, and the "merge" is the indexed
//!   write into `readings[type][node]`.

use dirq_net::Topology;
use dirq_sim::rng::sample_std_normal_pair;
use dirq_sim::runner::WorkerPool;
use dirq_sim::{split_key, RngFactory, SimRng, StreamRng};

use crate::field::SpatialField;
use crate::sensor::{SensorAssignment, SensorCatalog, SensorType};
use crate::temporal::{Ar1, Diurnal};

/// Spatial-structure style of a sensor type's base field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldStyle {
    /// Smooth sum of Gaussian bumps (gradual gradients).
    Smooth,
    /// Plateaued Voronoi microclimates (tightly clustered value levels) —
    /// the default: it matches the regime the paper's accuracy numbers
    /// imply, where query windows fall between well-separated clusters.
    Cellular,
}

/// Generator parameters for one sensor type.
#[derive(Clone, Debug)]
pub struct SensorTypeConfig {
    /// Baseline value (e.g. 20 °C).
    pub base: f64,
    /// Spatial structure style.
    pub field_style: FieldStyle,
    /// Spatial bump/cell amplitude.
    pub spatial_amplitude: f64,
    /// Spatial correlation length, metres (smooth fields only).
    pub correlation_len: f64,
    /// Number of spatial bumps / Voronoi cells.
    pub n_bumps: usize,
    /// Diurnal amplitude.
    pub diurnal_amplitude: f64,
    /// Diurnal period, epochs.
    pub diurnal_period: f64,
    /// Regional AR(1) persistence.
    pub regional_phi: f64,
    /// Regional AR(1) innovation σ.
    pub regional_sigma: f64,
    /// Node-local AR(1) persistence.
    pub local_phi: f64,
    /// Node-local AR(1) innovation σ.
    pub local_sigma: f64,
    /// White measurement-noise σ.
    pub noise_sigma: f64,
}

impl SensorTypeConfig {
    /// Temperature-like defaults (°C).
    ///
    /// The tuning philosophy for all four types: a **clustered** spatial
    /// field (few broad bumps → distinct microclimates whose value levels
    /// are well separated), **small node-local jitter** (so value clusters
    /// stay tight and δ-padding rarely crosses a cluster gap), and a
    /// pronounced **common drift** (diurnal + slow regional wander) that
    /// moves all nodes together — driving regular Range-Table escapes at
    /// any δ, which is what gives Fig. 6 its update traffic, without
    /// blurring the spatial structure that makes directed routing accurate.
    pub fn temperature() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 20.0,
            spatial_amplitude: 7.0,
            correlation_len: 35.0,
            n_bumps: 10,
            diurnal_amplitude: 6.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.05,
            local_phi: 0.9,
            local_sigma: 0.02,
            noise_sigma: 0.02,
        }
    }

    /// Relative-humidity-like defaults (%RH).
    pub fn humidity() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 60.0,
            spatial_amplitude: 12.0,
            correlation_len: 40.0,
            n_bumps: 10,
            diurnal_amplitude: -10.0, // anti-phase with temperature
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.1,
            local_phi: 0.9,
            local_sigma: 0.05,
            noise_sigma: 0.04,
        }
    }

    /// Illuminance-like defaults (arbitrary lux scale).
    pub fn light() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 500.0,
            spatial_amplitude: 250.0,
            correlation_len: 30.0,
            n_bumps: 12,
            diurnal_amplitude: 200.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 2.0,
            local_phi: 0.85,
            local_sigma: 1.5,
            noise_sigma: 1.5,
        }
    }

    /// Expected *cross-sectional* span of readings under this config — the
    /// typical spread of simultaneous readings across nodes — used as the
    /// reference against which percentage thresholds (δ %) are defined.
    ///
    /// Shared components (diurnal cycle, regional drift) move every node
    /// together and therefore do not separate nodes from each other; the
    /// spread at any instant comes from the spatial field, the node-local
    /// AR(1) processes and measurement noise.
    pub fn expected_span(&self) -> f64 {
        let local_sd = self.local_sigma / (1.0 - self.local_phi * self.local_phi).sqrt();
        2.0 * self.spatial_amplitude.abs() + 4.0 * local_sd + 4.0 * self.noise_sigma
    }

    /// CO₂-like defaults (ppm).
    pub fn co2() -> Self {
        SensorTypeConfig {
            field_style: FieldStyle::Cellular,
            base: 420.0,
            spatial_amplitude: 60.0,
            correlation_len: 30.0,
            n_bumps: 10,
            diurnal_amplitude: 30.0,
            diurnal_period: 1000.0,
            regional_phi: 0.99,
            regional_sigma: 0.6,
            local_phi: 0.92,
            local_sigma: 0.3,
            noise_sigma: 0.3,
        }
    }
}

/// Whole-world generator configuration.
///
/// At most 64 sensor types: the split-stream generation loop tests
/// carriers through per-node `u64` bitmasks ([`SensorWorld::new`]
/// asserts this loudly). The paper's scenario uses 4.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// One config per sensor type, indexed by [`SensorType`].
    pub types: Vec<SensorTypeConfig>,
    /// Side of the deployment square (must match the topology placement).
    pub side: f64,
}

impl WorldConfig {
    /// Reference spans per type (see [`SensorTypeConfig::expected_span`]).
    pub fn reference_spans(&self) -> Vec<f64> {
        self.types.iter().map(SensorTypeConfig::expected_span).collect()
    }

    /// The paper's 4-type environmental scenario.
    pub fn environmental(side: f64) -> Self {
        WorldConfig {
            types: vec![
                SensorTypeConfig::temperature(),
                SensorTypeConfig::humidity(),
                SensorTypeConfig::light(),
                SensorTypeConfig::co2(),
            ],
            side,
        }
    }
}

/// Base-2 log of the per-epoch draw budget of one `(node, type)` stream.
/// A carrier consumes 2 `u64` draws per epoch (one Box–Muller transform
/// covering both the AR(1) innovation and the measurement noise); the
/// budget of 8 leaves headroom so new draw sites never overlap the next
/// epoch's window.
const DRAW_BUDGET_LOG2: u32 = 3;

/// Below this node count the sharded advance is not worth the dispatch
/// (the whole epoch is a few microseconds); the serial loop is used even
/// when a pool is configured. Results are identical either way.
const PARALLEL_MIN_NODES: usize = 512;

/// Per-type dynamic state.
struct TypeState {
    /// `field.value(position(node))` — the field is static, so its
    /// per-node evaluation (a sum over every bump/cell) is hoisted out of
    /// the per-epoch loop and the field itself dropped after construction.
    field_at_node: Vec<f64>,
    diurnal: Diurnal,
    regional: Ar1,
    /// The type's shared stream, driving the regional AR(1) only.
    regional_rng: SimRng,
    /// Per-node local AR(1) processes; a process only steps on epochs
    /// where its node carries the type (lazy per-carrier generation).
    local: Vec<Ar1>,
    /// Per-node counter-stream keys (`split_key` of the type's base key
    /// by node index), hoisted out of the per-epoch loop.
    node_keys: Vec<u64>,
    noise_sigma: f64,
}

/// The synthetic environment: per-epoch readings for every (node, type).
pub struct SensorWorld {
    catalog: SensorCatalog,
    assignment: SensorAssignment,
    states: Vec<TypeState>,
    /// `readings[type][node]`, `NaN` = node lacks the sensor.
    readings: Vec<Vec<f64>>,
    epoch: u64,
    /// Flat per-node carried-type masks, rebuilt only when the assignment
    /// version moves — the generation loop reads one sequential `u64`
    /// array instead of chasing `Vec<Vec<bool>>` rows per node.
    mask_cache: Vec<u64>,
    /// Assignment version [`SensorAssignment::version`] the cache mirrors.
    mask_version: Option<u64>,
    /// Worker pool for the sharded advance (`None` below 2 workers).
    pool: Option<WorkerPool>,
    /// Run the sharded advance even when the pool has no runnable helper
    /// or the world is small (test hook; results are identical).
    force_sharded: bool,
}

/// One `(node, type)` reading: step the local AR(1) and draw the noise
/// from the cell's own counter stream, positioned at this epoch's window.
/// One Box–Muller transform supplies both standard normals (innovation +
/// noise). Pure in `(key, epoch, local state, shared components)` — the
/// property the parallel advance's bit-identity rests on.
#[inline]
fn generate_cell(
    local: &mut Ar1,
    key: u64,
    epoch: u64,
    field: f64,
    shared: f64,
    noise_sigma: f64,
) -> f64 {
    let mut rng = StreamRng::at(key, epoch << DRAW_BUDGET_LOG2);
    let (z_innovation, z_noise) = sample_std_normal_pair(&mut rng);
    let local_value = local.step_std(z_innovation);
    // Float addition is not associative: serial and sharded paths must
    // both evaluate exactly this expression (they do — both call here)
    // or fixed-seed runs stop being bit-identical across worker counts.
    field + shared + local_value + noise_sigma * z_noise
}

/// Raw per-type pointers for the sharded advance. Shards process disjoint
/// node ranges, so the indexed stores into `readings` and `locals` never
/// alias; `field` and `node_keys` are read-only.
struct TypePtrs {
    readings: *mut f64,
    locals: *mut Ar1,
    field: *const f64,
    node_keys: *const u64,
    shared: f64,
    noise_sigma: f64,
}

/// The sharded advance job: per-type pointer bundles plus the shared
/// read-only inputs each chunk needs.
struct AdvanceShards<'a> {
    types: Vec<TypePtrs>,
    masks: &'a [u64],
    epoch: u64,
    n: usize,
    chunk: usize,
}

// SAFETY: the raw pointers target disjoint per-node slots across chunks
// (chunk k owns node range [k·chunk, (k+1)·chunk)); everything else is
// read-only shared state.
unsafe impl Sync for AdvanceShards<'_> {}

impl AdvanceShards<'_> {
    /// Generate every `(node, type)` cell of chunk `k`. Type-outer loop:
    /// within a type every array access walks the chunk's node range
    /// sequentially.
    ///
    /// # Safety
    /// Each chunk index must be claimed at most once per epoch (the
    /// worker pool guarantees exactly-once execution).
    unsafe fn run_chunk(&self, k: usize) {
        let lo = k * self.chunk;
        let hi = (lo + self.chunk).min(self.n);
        for (t, tp) in self.types.iter().enumerate() {
            let bit = 1u64 << t;
            for node in lo..hi {
                *tp.readings.add(node) = if self.masks[node] & bit != 0 {
                    generate_cell(
                        &mut *tp.locals.add(node),
                        *tp.node_keys.add(node),
                        self.epoch,
                        *tp.field.add(node),
                        tp.shared,
                        tp.noise_sigma,
                    )
                } else {
                    f64::NAN
                };
            }
        }
    }
}

impl SensorWorld {
    /// Build a world over `topo` with the given catalog/assignment.
    pub fn new(
        config: &WorldConfig,
        catalog: SensorCatalog,
        assignment: SensorAssignment,
        topo: &Topology,
        rng_factory: &RngFactory,
    ) -> Self {
        assert_eq!(
            config.types.len(),
            catalog.len(),
            "one SensorTypeConfig per catalog type required"
        );
        assert_eq!(assignment.len(), topo.len(), "assignment size must match topology");
        assert!(config.types.len() <= 64, "carried-mask generation supports at most 64 types");
        let n = topo.len();
        let mut field_rng = rng_factory.stream("world-fields");
        let local_key = rng_factory.stream_key("world-local", 0);
        let states: Vec<TypeState> = config
            .types
            .iter()
            .enumerate()
            .map(|(t, c)| {
                let field = match c.field_style {
                    FieldStyle::Smooth => SpatialField::random(
                        c.base,
                        c.spatial_amplitude,
                        c.correlation_len,
                        c.n_bumps,
                        config.side,
                        &mut field_rng,
                    ),
                    FieldStyle::Cellular => SpatialField::cellular(
                        c.base,
                        c.spatial_amplitude,
                        c.n_bumps,
                        config.side,
                        &mut field_rng,
                    ),
                };
                let field_at_node =
                    (0..n).map(|i| field.value(&topo.position(node_id(i)))).collect();
                TypeState {
                    field_at_node,
                    diurnal: if c.diurnal_amplitude == 0.0 {
                        Diurnal::none()
                    } else {
                        Diurnal::new(c.diurnal_amplitude, c.diurnal_period, 0.0)
                    },
                    regional: Ar1::new(c.regional_phi, c.regional_sigma),
                    regional_rng: rng_factory.indexed_stream("world-regional", t as u64),
                    local: (0..n).map(|_| Ar1::new(c.local_phi, c.local_sigma)).collect(),
                    node_keys: {
                        let type_key = split_key(local_key, t as u64);
                        (0..n).map(|i| split_key(type_key, i as u64)).collect()
                    },
                    noise_sigma: c.noise_sigma,
                }
            })
            .collect();
        let mut world = SensorWorld {
            readings: vec![vec![f64::NAN; n]; states.len()],
            catalog,
            assignment,
            states,
            epoch: 0,
            mask_cache: Vec::new(),
            mask_version: None,
            pool: None,
            force_sharded: false,
        };
        world.regenerate_readings();
        world
    }

    /// Configure the parallel advance: shard the per-epoch generation over
    /// `workers` threads (1 disables the pool). No pool is spawned below
    /// [`PARALLEL_MIN_NODES`] — the sharded path would never engage, so
    /// small worlds skip the helper threads entirely. The pool's helpers
    /// are clamped to the machine's available parallelism, and a pool
    /// without a runnable helper (the 1-core case) falls back to the
    /// serial loop — worker counts only ever change speed, never results.
    pub fn set_workers(&mut self, workers: usize) {
        self.pool = if workers > 1 && self.assignment.len() >= PARALLEL_MIN_NODES {
            Some(WorkerPool::new(workers))
        } else {
            None
        };
    }

    /// Threads the advance can use (1 when no pool is configured).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::workers)
    }

    /// Run the sharded advance at `workers` threads even on 1-core hosts
    /// and below the small-world threshold. Differential-test hook;
    /// results are identical to the serial loop either way.
    #[doc(hidden)]
    pub fn force_sharded_advance(&mut self, workers: usize) {
        assert!(workers > 1, "sharded advance requires more than one worker");
        self.pool = Some(WorkerPool::new(workers));
        self.force_sharded = true;
    }

    /// Write the dynamic world state — epoch cursor, assignment, per-type
    /// AR(1) positions and RNG streams, and the current readings matrix —
    /// to `w`. Static structure (spatial fields, node keys, diurnal
    /// parameters) is rebuilt deterministically by [`SensorWorld::new`].
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"WRLD");
        w.u64(self.epoch);
        self.assignment.snap(w);
        w.len_of(self.states.len());
        for s in &self.states {
            s.regional.snap(w);
            w.rng(&s.regional_rng);
            w.len_of(s.local.len());
            for a in &s.local {
                a.snap(w);
            }
        }
        w.len_of(self.readings.len());
        for row in &self.readings {
            w.f64s(row);
        }
    }

    /// Overlay state captured by [`SensorWorld::snap`] onto a freshly
    /// constructed world of the same configuration. Readings are restored
    /// verbatim — regenerating them would re-step the local AR(1)
    /// processes and break bit-identity. The carried-mask cache is
    /// invalidated.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        r.tag(b"WRLD")?;
        self.epoch = r.u64()?;
        self.assignment.restore(r)?;
        let pos = r.position();
        let n_types = r.seq_len(8)?;
        if n_types != self.states.len() {
            return Err(dirq_sim::SnapError::Malformed { pos, what: "world type count mismatch" });
        }
        for s in &mut self.states {
            s.regional = Ar1::unsnap(r)?;
            s.regional_rng = r.rng()?;
            let pos = r.position();
            let n_local = r.seq_len(24)?;
            if n_local != s.local.len() {
                return Err(dirq_sim::SnapError::Malformed {
                    pos,
                    what: "world node count mismatch",
                });
            }
            for a in &mut s.local {
                *a = Ar1::unsnap(r)?;
            }
        }
        let pos = r.position();
        let n_rows = r.seq_len(8)?;
        if n_rows != self.readings.len() {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "readings type count mismatch",
            });
        }
        for row in &mut self.readings {
            let pos = r.position();
            let restored = r.f64s()?;
            if restored.len() != row.len() {
                return Err(dirq_sim::SnapError::Malformed {
                    pos,
                    what: "readings node count mismatch",
                });
            }
            *row = restored;
        }
        self.mask_version = None;
        Ok(())
    }

    /// Sensor catalog in use.
    pub fn catalog(&self) -> &SensorCatalog {
        &self.catalog
    }

    /// Node-to-sensor assignment.
    pub fn assignment(&self) -> &SensorAssignment {
        &self.assignment
    }

    /// Mutable assignment (for runtime sensor addition experiments).
    pub fn assignment_mut(&mut self) -> &mut SensorAssignment {
        &mut self.assignment
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance to the next epoch: step the shared per-type components and
    /// regenerate every carrier's reading from its own counter stream.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        for state in &mut self.states {
            state.regional.step(&mut state.regional_rng);
        }
        self.regenerate_readings();
    }

    /// Draw this epoch's readings. Carriers step their local AR(1) and
    /// noise on the cell's own stream; non-carriers never draw and their
    /// local process stays frozen. Serial and sharded paths produce
    /// bit-identical output (each cell is independent), so the path choice
    /// is purely a speed decision.
    fn regenerate_readings(&mut self) {
        let n = self.assignment.len();
        let epoch = self.epoch;
        if self.mask_version != Some(self.assignment.version()) || self.mask_cache.len() != n {
            self.mask_cache = (0..n).map(|i| self.assignment.carried_mask(i)).collect();
            self.mask_version = Some(self.assignment.version());
        }
        let sharded = self.pool.is_some()
            && (self.force_sharded
                || (n >= PARALLEL_MIN_NODES
                    && self.pool.as_ref().is_some_and(|p| p.workers() > 1)));
        if !sharded {
            // Type-outer loop: the mask, local-state, key, field and
            // reading arrays all walk node order sequentially.
            let masks = &self.mask_cache;
            for (t, state) in self.states.iter_mut().enumerate() {
                let bit = 1u64 << t;
                let shared = state.diurnal.value(epoch) + state.regional.value();
                let row = &mut self.readings[t];
                for node in 0..n {
                    row[node] = if masks[node] & bit != 0 {
                        generate_cell(
                            &mut state.local[node],
                            state.node_keys[node],
                            epoch,
                            state.field_at_node[node],
                            shared,
                            state.noise_sigma,
                        )
                    } else {
                        f64::NAN
                    };
                }
            }
            return;
        }
        // Sharded: contiguous node chunks fan out over the pool. The
        // per-type pointer bundles give each chunk aliasing-free indexed
        // access to its own node range.
        let types: Vec<TypePtrs> = self
            .states
            .iter_mut()
            .zip(self.readings.iter_mut())
            .map(|(state, row)| TypePtrs {
                readings: row.as_mut_ptr(),
                locals: state.local.as_mut_ptr(),
                field: state.field_at_node.as_ptr(),
                node_keys: state.node_keys.as_ptr(),
                shared: state.diurnal.value(epoch) + state.regional.value(),
                noise_sigma: state.noise_sigma,
            })
            .collect();
        let pool = self.pool.as_mut().expect("sharded advance requires the pool");
        // Chunks of at least 64 nodes, ~4 per worker for balance.
        let chunk = n.div_ceil(pool.workers() * 4).max(64);
        let shards = AdvanceShards { types, masks: &self.mask_cache, epoch, n, chunk };
        // SAFETY: the pool executes each chunk exactly once, and chunks
        // touch disjoint node ranges (see `AdvanceShards`).
        pool.run(n.div_ceil(chunk), &|k| unsafe { shards.run_chunk(k) });
    }

    /// The reading node `node` acquired this epoch for `t`
    /// (`None` if it lacks the sensor).
    pub fn reading(&self, node: usize, t: SensorType) -> Option<f64> {
        let v = *self.readings.get(t.index())?.get(node)?;
        (!v.is_nan()).then_some(v)
    }

    /// All current readings for `t` (`NaN` where absent).
    pub fn readings(&self, t: SensorType) -> &[f64] {
        &self.readings[t.index()]
    }

    /// Observed min/max over nodes carrying `t` this epoch.
    pub fn value_range(&self, t: SensorType) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.readings[t.index()] {
            if !v.is_nan() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }
}

#[inline]
fn node_id(i: usize) -> dirq_net::NodeId {
    dirq_net::NodeId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_net::placement::{Placement, SinkPlacement};
    use dirq_net::radio::UnitDisk;

    fn build_world(seed: u64) -> (SensorWorld, Topology) {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("topo");
        let topo = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            200,
        )
        .unwrap();
        let catalog = SensorCatalog::environmental();
        let assignment = SensorAssignment::heterogeneous(50, 4, 0.6, &mut f.stream("assign"));
        let world =
            SensorWorld::new(&WorldConfig::environmental(100.0), catalog, assignment, &topo, &f);
        (world, topo)
    }

    #[test]
    fn readings_follow_assignment() {
        let (world, topo) = build_world(31);
        let t = SensorType(0);
        for node in 0..topo.len() {
            let has = world.assignment().has(node, t);
            assert_eq!(world.reading(node, t).is_some(), has, "node {node}");
        }
        // Root has no sensors.
        for t in world.catalog().types() {
            assert!(world.reading(0, t).is_none());
        }
    }

    #[test]
    fn epoch_advances_and_readings_change() {
        let (mut world, _topo) = build_world(32);
        let t = SensorType(0);
        let carrier = world.assignment().carriers(t)[0];
        let before = world.reading(carrier, t).unwrap();
        world.advance_epoch();
        assert_eq!(world.epoch(), 1);
        let after = world.reading(carrier, t).unwrap();
        assert_ne!(before, after, "noise + AR(1) must move readings");
    }

    /// All readings of every type at the current epoch, for bit-equality.
    fn snapshot(world: &SensorWorld) -> Vec<Vec<u64>> {
        world
            .catalog()
            .types()
            .map(|t| world.readings(t).iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn sharded_advance_matches_serial() {
        let (mut serial, _) = build_world(40);
        let (mut sharded, _) = build_world(40);
        sharded.force_sharded_advance(4);
        assert_eq!(snapshot(&serial), snapshot(&sharded), "construction must agree");
        for epoch in 1..=20u64 {
            serial.advance_epoch();
            sharded.advance_epoch();
            assert_eq!(snapshot(&serial), snapshot(&sharded), "epoch {epoch} diverged");
        }
    }

    #[test]
    fn worker_count_never_changes_readings() {
        let (mut w2, _) = build_world(41);
        let (mut w4, _) = build_world(41);
        w2.force_sharded_advance(2);
        w4.force_sharded_advance(4);
        for _ in 0..10 {
            w2.advance_epoch();
            w4.advance_epoch();
        }
        assert_eq!(snapshot(&w2), snapshot(&w4));
    }

    #[test]
    fn streams_are_isolated_across_assignment_changes() {
        // Removing / adding sensors on one node must not perturb any other
        // (node, type) sequence — per-cell counter streams cannot shift.
        let (mut control, _) = build_world(42);
        let (mut mutated, _) = build_world(42);
        let t = SensorType(1);
        let victim = mutated.assignment().carriers(t)[2];
        mutated.assignment_mut().remove(victim, t);
        for epoch in 1..=10u64 {
            if epoch == 5 {
                // Restore mid-run: the victim rejoins its own stream; all
                // other streams never noticed.
                mutated.assignment_mut().add(victim, t);
            }
            control.advance_epoch();
            mutated.advance_epoch();
            for ty in control.catalog().types() {
                for node in 0..control.assignment().len() {
                    if node == victim && ty == t {
                        continue;
                    }
                    assert_eq!(
                        control.reading(node, ty).map(f64::to_bits),
                        mutated.reading(node, ty).map(f64::to_bits),
                        "epoch {epoch}: node {node} type {ty:?} perturbed by victim churn"
                    );
                }
            }
        }
    }

    #[test]
    fn non_carriers_stay_nan_and_frozen() {
        let (mut world, _) = build_world(43);
        let t = SensorType(2);
        let non_carrier =
            (0..world.assignment().len()).find(|&n| !world.assignment().has(n, t)).unwrap();
        for _ in 0..5 {
            world.advance_epoch();
            assert!(world.reading(non_carrier, t).is_none());
        }
        // Lazy generation: the local process of a non-carrier is frozen at
        // its initial state (no draws ever happened for the cell).
        assert_eq!(world.states[t.index()].local[non_carrier].value(), 0.0);
    }

    #[test]
    fn temporal_correlation_consecutive_epochs() {
        let (mut world, _topo) = build_world(33);
        let t = SensorType(0);
        let carriers = world.assignment().carriers(t);
        // Mean absolute per-epoch change must be far below the overall
        // spread of values across space — i.e. time series are smooth.
        let mut step_change = 0.0;
        let mut count = 0;
        let mut prev: Vec<Option<f64>> = carriers.iter().map(|&c| world.reading(c, t)).collect();
        for _ in 0..200 {
            world.advance_epoch();
            for (i, &c) in carriers.iter().enumerate() {
                let cur = world.reading(c, t).unwrap();
                if let Some(p) = prev[i] {
                    step_change += (cur - p).abs();
                    count += 1;
                }
                prev[i] = Some(cur);
            }
        }
        let mean_step = step_change / count as f64;
        let (lo, hi) = world.value_range(t).unwrap();
        assert!(
            mean_step < (hi - lo) * 0.5,
            "per-epoch change {mean_step:.3} too large vs spread {:.3}",
            hi - lo
        );
    }

    #[test]
    fn spatial_correlation_of_readings() {
        let (world, topo) = build_world(34);
        let t = SensorType(1);
        let carriers = world.assignment().carriers(t);
        // Compare mean |Δreading| between close pairs and far pairs.
        let mut near = (0.0, 0);
        let mut far = (0.0, 0);
        for (i, &a) in carriers.iter().enumerate() {
            for &b in &carriers[i + 1..] {
                let d = topo.position(node_id(a)).distance(&topo.position(node_id(b)));
                let dv = (world.reading(a, t).unwrap() - world.reading(b, t).unwrap()).abs();
                if d < 20.0 {
                    near = (near.0 + dv, near.1 + 1);
                } else if d > 60.0 {
                    far = (far.0 + dv, far.1 + 1);
                }
            }
        }
        assert!(near.1 > 0 && far.1 > 0, "need both near and far pairs");
        let near_mean = near.0 / near.1 as f64;
        let far_mean = far.0 / far.1 as f64;
        assert!(
            near_mean < far_mean,
            "near pairs ({near_mean:.3}) should differ less than far pairs ({far_mean:.3})"
        );
    }

    #[test]
    fn value_range_brackets_all_readings() {
        let (world, _) = build_world(35);
        for t in world.catalog().types() {
            let (lo, hi) = world.value_range(t).unwrap();
            for node in 0..world.assignment().len() {
                if let Some(v) = world.reading(node, t) {
                    assert!(v >= lo && v <= hi);
                }
            }
        }
    }

    #[test]
    fn diurnal_cycle_visible_in_long_run() {
        let (mut world, _topo) = build_world(36);
        let t = SensorType(0); // temperature
        let period = SensorTypeConfig::temperature().diurnal_period as u64;
        let carrier = world.assignment().carriers(t)[0];
        let mut quarter = 0.0;
        let mut three_quarter = 0.0;
        for e in 1..=period {
            world.advance_epoch();
            if e == period / 4 {
                quarter = world.reading(carrier, t).unwrap();
            }
            if e == 3 * period / 4 {
                three_quarter = world.reading(carrier, t).unwrap();
            }
        }
        // Peak vs trough differ by ~2×amplitude = 12; AR/noise is ≪ that.
        assert!(
            quarter - three_quarter > 4.0,
            "diurnal swing not visible: peak {quarter:.2} trough {three_quarter:.2}"
        );
    }
}
