//! # dirq-data — synthetic environment and query workloads
//!
//! The DirQ paper evaluates on "a synthetic dataset with 4 sensor types …
//! where sensor values of nodes located close to one another are spatially
//! related. The generated sensor data is also related in the temporal
//! dimension. Each sensor acquires a reading every … epoch" and on "random
//! queries which covered 20 %, 40 % and 60 % of the nodes … generated every
//! 20 epochs". The dataset itself was never published, so this crate
//! regenerates one with the stated properties:
//!
//! * [`sensor`] — sensor types, catalog (with post-deployment registration,
//!   matching the paper's scalability claim), and heterogeneous
//!   node-to-sensor assignment.
//! * [`field`] — smooth spatially correlated base fields (radial-basis
//!   bumps over the deployment plane).
//! * [`temporal`] — temporal dynamics: a diurnal cycle plus AR(1) processes
//!   at regional and node-local scales.
//! * [`world`] — [`world::SensorWorld`]: per-epoch readings for every
//!   (node, sensor type) pair.
//! * [`workload`] — one-shot range queries calibrated so that a target
//!   fraction of the network (sources **plus** forwarding nodes, the
//!   paper's definition of "percentage of nodes involved") is relevant.

#![warn(missing_docs)]

pub mod field;
pub mod sensor;
pub mod temporal;
pub mod workload;
pub mod world;

pub use sensor::{SensorCatalog, SensorType};
pub use workload::{QueryGenerator, QueryId, RangeQuery};
pub use world::{SensorWorld, WorldConfig};
