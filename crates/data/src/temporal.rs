//! Temporal dynamics of the measured signals.
//!
//! The generated data must be "related in the temporal dimension": each
//! sensor type combines
//!
//! * a **diurnal cycle** (deterministic sinusoid — temperature and light
//!   swing with the day),
//! * a **regional AR(1) process** shared by all nodes of the type (weather
//!   fronts move the whole field together, preserving spatial correlation
//!   over time), and
//! * a **node-local AR(1) process** (micro-climate),
//!
//! plus white measurement noise applied by the world when a reading is
//! acquired.

use dirq_sim::rng::sample_normal;
use rand::Rng;

/// First-order autoregressive process `x ← φ·x + ε`, `ε ~ N(0, σ²)`.
#[derive(Clone, Copy, Debug)]
pub struct Ar1 {
    phi: f64,
    sigma: f64,
    value: f64,
}

impl Ar1 {
    /// Create with persistence `phi` ∈ [0, 1) and innovation σ `sigma`.
    pub fn new(phi: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&phi), "phi must be in [0, 1) for stationarity");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Ar1 { phi, sigma, value: 0.0 }
    }

    /// Advance one step and return the new value. Generic over the
    /// generator so both the shared per-type streams ([`dirq_sim::SimRng`])
    /// and the per-node counter streams ([`dirq_sim::StreamRng`]) drive it.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.value = self.phi * self.value + sample_normal(rng, 0.0, self.sigma);
        self.value
    }

    /// Advance one step from a caller-supplied standard-normal innovation
    /// `z` (the split-stream world draws paired innovations and feeds
    /// them in; see `dirq_sim::rng::sample_std_normal_pair`).
    pub fn step_std(&mut self, z: f64) -> f64 {
        self.value = self.phi * self.value + self.sigma * z;
        self.value
    }

    /// Current value without stepping.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Stationary standard deviation `σ/√(1−φ²)`.
    pub fn stationary_std(&self) -> f64 {
        self.sigma / (1.0 - self.phi * self.phi).sqrt()
    }

    /// Write the full process state (parameters and current value) to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.f64(self.phi);
        w.f64(self.sigma);
        w.f64(self.value);
    }

    /// Rebuild a process captured by [`Ar1::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        let pos = r.position();
        let phi = r.f64()?;
        let sigma = r.f64()?;
        let value = r.f64()?;
        if !(0.0..1.0).contains(&phi) || sigma.is_nan() || sigma < 0.0 {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "AR(1) parameters out of range",
            });
        }
        Ok(Ar1 { phi, sigma, value })
    }
}

/// Deterministic diurnal sinusoid.
#[derive(Clone, Copy, Debug)]
pub struct Diurnal {
    amplitude: f64,
    period_epochs: f64,
    phase: f64,
}

impl Diurnal {
    /// Cycle with the given amplitude, period (in epochs) and phase
    /// (radians).
    pub fn new(amplitude: f64, period_epochs: f64, phase: f64) -> Self {
        assert!(period_epochs > 0.0, "period must be positive");
        Diurnal { amplitude, period_epochs, phase }
    }

    /// A flat cycle (no diurnal component).
    pub fn none() -> Self {
        Diurnal { amplitude: 0.0, period_epochs: 1.0, phase: 0.0 }
    }

    /// Value at `epoch`.
    pub fn value(&self, epoch: u64) -> f64 {
        self.amplitude
            * ((std::f64::consts::TAU * epoch as f64 / self.period_epochs) + self.phase).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    #[test]
    fn ar1_with_zero_sigma_decays_geometrically() {
        let mut p = Ar1::new(0.5, 0.0);
        p.value = 8.0;
        let mut rng = RngFactory::new(1).stream("ar1");
        assert_eq!(p.step(&mut rng), 4.0);
        assert_eq!(p.step(&mut rng), 2.0);
    }

    #[test]
    fn ar1_stationary_variance_matches_theory() {
        let mut p = Ar1::new(0.9, 1.0);
        let mut rng = RngFactory::new(2).stream("ar1-var");
        // Warm up past the transient.
        for _ in 0..500 {
            p.step(&mut rng);
        }
        let n = 50_000;
        let mut w = dirq_sim::stats::Welford::new();
        for _ in 0..n {
            w.observe(p.step(&mut rng));
        }
        let theory = p.stationary_std();
        assert!(
            (w.std_dev() - theory).abs() / theory < 0.1,
            "std {} vs theory {}",
            w.std_dev(),
            theory
        );
    }

    #[test]
    fn ar1_successive_values_are_correlated() {
        let mut p = Ar1::new(0.95, 1.0);
        let mut rng = RngFactory::new(3).stream("ar1-corr");
        for _ in 0..100 {
            p.step(&mut rng);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        let mut prev = p.value();
        for _ in 0..20_000 {
            let cur = p.step(&mut rng);
            num += prev * cur;
            den += prev * prev;
            prev = cur;
        }
        let lag1 = num / den;
        assert!((lag1 - 0.95).abs() < 0.02, "lag-1 autocorr {lag1} != 0.95");
    }

    #[test]
    #[should_panic(expected = "phi must be in [0, 1)")]
    fn nonstationary_phi_rejected() {
        let _ = Ar1::new(1.0, 1.0);
    }

    #[test]
    fn diurnal_period_and_amplitude() {
        let d = Diurnal::new(5.0, 100.0, 0.0);
        assert_eq!(d.value(0), 0.0);
        assert!((d.value(25) - 5.0).abs() < 1e-9, "peak at quarter period");
        assert!(d.value(50).abs() < 1e-9, "zero at half period");
        assert!((d.value(75) + 5.0).abs() < 1e-9, "trough at three quarters");
        // Periodicity.
        assert!((d.value(137) - d.value(237)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_none_is_flat() {
        let d = Diurnal::none();
        for e in [0u64, 7, 1000] {
            assert_eq!(d.value(e), 0.0);
        }
    }
}
