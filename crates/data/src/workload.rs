//! Range-query workloads.
//!
//! Users inject **one-shot range queries** ("acquire all temperature
//! readings currently between 22 °C and 25 °C"). The paper's experiments
//! are parameterised by the *percentage of nodes involved in responding to
//! a query*, which it defines as source nodes **plus** the intermediate
//! forwarding nodes on the tree paths to them (Section 7.1). The
//! [`QueryGenerator`] here calibrates each query's value window so that the
//! involved fraction hits a target (the paper's 20 %, 40 %, 60 %).

use dirq_net::{NodeId, Position, Rect, SpanningTree};
use dirq_sim::SimRng;
use rand::Rng;

use crate::sensor::SensorType;
use crate::world::SensorWorld;

/// Unique query identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A one-shot range query over a single sensor type, optionally scoped to
/// a spatial region (the paper's *static location attribute*: "queries can
/// be directed based on … even location (static) if it is available").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeQuery {
    /// Unique id (assigned by the generator / engine).
    pub id: QueryId,
    /// The sensor type queried.
    pub stype: SensorType,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Optional spatial scope: only readings taken inside this rectangle
    /// qualify. `None` = the whole network.
    pub region: Option<Rect>,
}

impl RangeQuery {
    /// A value-only query over the whole network.
    pub fn value(id: QueryId, stype: SensorType, lo: f64, hi: f64) -> Self {
        RangeQuery { id, stype, lo, hi, region: None }
    }

    /// Add a spatial scope.
    pub fn with_region(self, region: Rect) -> Self {
        RangeQuery { region: Some(region), ..self }
    }

    /// Whether a reading satisfies the value window (ignores the region;
    /// see [`RangeQuery::matches_at`]).
    #[inline]
    pub fn matches(&self, value: f64) -> bool {
        !value.is_nan() && value >= self.lo && value <= self.hi
    }

    /// Whether a reading taken at `pos` fully satisfies the query.
    #[inline]
    pub fn matches_at(&self, value: f64, pos: &Position) -> bool {
        self.matches(value) && self.region.is_none_or(|r| r.contains(pos))
    }

    /// Whether an advertised `[min, max]` interval overlaps the query
    /// window — the routing test DirQ applies at every hop.
    #[inline]
    pub fn overlaps(&self, min: f64, max: f64) -> bool {
        min <= self.hi && max >= self.lo
    }

    /// Write the query to `w` (value bounds by bit pattern).
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.u64(self.id.0);
        w.u8(self.stype.0);
        w.f64(self.lo);
        w.f64(self.hi);
        w.bool(self.region.is_some());
        if let Some(region) = &self.region {
            region.snap(w);
        }
    }

    /// Rebuild a query captured by [`RangeQuery::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        Ok(RangeQuery {
            id: QueryId(r.u64()?),
            stype: SensorType(r.u8()?),
            lo: r.f64()?,
            hi: r.f64()?,
            region: if r.bool()? { Some(Rect::unsnap(r)?) } else { None },
        })
    }
}

/// Ground truth for one query at injection time.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Alive nodes whose current reading matches the query.
    pub sources: Vec<NodeId>,
    /// `involved[node]`: the node is a source or lies on a tree path from
    /// the root to a source (root itself excluded — it injects the query).
    pub involved: Vec<bool>,
    /// Number of involved nodes.
    pub involved_count: usize,
}

impl GroundTruth {
    /// Involved fraction of the whole network (including the root in the
    /// denominator, matching the paper's percentages).
    pub fn involved_fraction(&self) -> f64 {
        if self.involved.is_empty() {
            0.0
        } else {
            self.involved_count as f64 / self.involved.len() as f64
        }
    }

    /// Write the full truth record to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.len_of(self.sources.len());
        for s in &self.sources {
            w.u32(s.0);
        }
        w.bools(&self.involved);
        w.len_of(self.involved_count);
    }

    /// Rebuild a record captured by [`GroundTruth::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        let n = r.seq_len(4)?;
        let sources = (0..n).map(|_| r.u32().map(NodeId)).collect::<Result<_, _>>()?;
        let involved = r.bools()?;
        let involved_count = r.u64()? as usize;
        Ok(GroundTruth { sources, involved, involved_count })
    }
}

/// Compute the ground truth of a window `[lo, hi]` over `readings` (indexed
/// by node, `NaN` = no sensor), with forwarding paths taken from `tree`.
/// `is_alive` filters dead nodes out of the source set.
///
/// Sources detached from the tree (mid-repair orphans) are counted as
/// involved — they *should* ideally be reached — but contribute no
/// forwarding path.
pub fn ground_truth(
    readings: &[f64],
    tree: &SpanningTree,
    lo: f64,
    hi: f64,
    is_alive: impl Fn(NodeId) -> bool,
) -> GroundTruth {
    ground_truth_by(readings.len(), tree, |i| {
        let node = NodeId::from_index(i);
        let v = readings[i];
        !v.is_nan() && v >= lo && v <= hi && is_alive(node)
    })
}

/// Ground truth for a full [`RangeQuery`], honouring its optional spatial
/// region (`positions` indexed by node).
pub fn ground_truth_for_query(
    readings: &[f64],
    positions: &[dirq_net::Position],
    tree: &SpanningTree,
    query: &RangeQuery,
    is_alive: impl Fn(NodeId) -> bool,
) -> GroundTruth {
    assert_eq!(readings.len(), positions.len(), "readings/positions must align");
    ground_truth_by(readings.len(), tree, |i| {
        is_alive(NodeId::from_index(i)) && query.matches_at(readings[i], &positions[i])
    })
}

/// Shared core: sources are the non-root nodes satisfying `is_source`;
/// involved = sources plus their tree paths (root excluded).
fn ground_truth_by(
    n: usize,
    tree: &SpanningTree,
    is_source: impl Fn(usize) -> bool,
) -> GroundTruth {
    let mut scratch = TruthScratch::default();
    let involved_count = scratch.mark(n, tree, is_source);
    GroundTruth {
        sources: std::mem::take(&mut scratch.sources),
        involved: std::mem::take(&mut scratch.involved),
        involved_count,
    }
}

/// Reusable buffers for ground-truth evaluation. The generator's window
/// calibration bisects over ~200 candidate windows per query; with these
/// buffers each evaluation is allocation-free (the old path allocated an
/// `involved` vector plus one path vector per source per evaluation).
#[derive(Clone, Debug, Default)]
struct TruthScratch {
    involved: Vec<bool>,
    sources: Vec<NodeId>,
}

impl TruthScratch {
    /// Recompute `sources`/`involved` in place; returns the involved count.
    ///
    /// Paths are marked by walking parent pointers and stopping at the
    /// first already-involved ancestor — path suffixes towards the root are
    /// shared, so total marking work is O(n) rather than O(n · depth).
    fn mark(&mut self, n: usize, tree: &SpanningTree, is_source: impl Fn(usize) -> bool) -> usize {
        self.involved.clear();
        self.involved.resize(n, false);
        self.sources.clear();
        let mut count = 0;
        for i in 0..n {
            let node = NodeId::from_index(i);
            if node.is_root() || !is_source(i) {
                continue;
            }
            self.sources.push(node);
            if !self.involved[i] {
                self.involved[i] = true;
                count += 1;
            }
            let mut cur = node;
            while let Some(p) = tree.parent(cur) {
                if p.is_root() || self.involved[p.index()] {
                    break;
                }
                self.involved[p.index()] = true;
                count += 1;
                cur = p;
            }
        }
        count
    }
}

/// A calibrated query plus its injection-time ground truth.
#[derive(Clone, Debug)]
pub struct CalibratedQuery {
    /// The query to inject.
    pub query: RangeQuery,
    /// Ground truth at calibration time.
    pub truth: GroundTruth,
}

/// Cold-start calibration: candidate window centres per query.
const COLD_CANDIDATES: usize = 8;
/// Cold-start calibration: bisection steps per candidate.
const COLD_ITERS: usize = 24;
/// Warm-start calibration: candidate window centres per query.
const WARM_CANDIDATES: usize = 3;
/// Warm-start calibration: bisection steps per candidate (the bracket is
/// only 64× wide, so 10 steps resolve the width to ~w/128).
const WARM_ITERS: usize = 10;
/// Warm-start bracket half-decades around the previous width.
const WARM_BRACKET: f64 = 8.0;

/// Generates range queries whose involved fraction approximates a target.
///
/// Calibration **warm-starts from the previous window per sensor type**:
/// the involved fraction is monotone in the window half-width, and the
/// target width drifts slowly between consecutive queries of a type (the
/// world's diurnal/regional components move all readings together), so the
/// bisection brackets `[w₀/8, 8·w₀]` around the last accepted width with
/// fewer candidates and steps. A cold full-span calibration runs for the
/// first query of each type — and as a fallback whenever the warm result
/// misses the target badly (e.g. after heavy churn reshapes the value
/// distribution). This cuts the ~200 ground-truth probes per query to
/// ~35, which is what keeps multi-thousand-node scenario generation fast.
pub struct QueryGenerator {
    next_id: u64,
    target_fraction: f64,
    every_epochs: u64,
    /// Number of candidate window centres evaluated per cold query.
    candidates: usize,
    /// Probability that a generated query is spatially scoped (requires
    /// node positions — the paper's optional location attribute).
    spatial_fraction: f64,
    rng: SimRng,
    /// Reusable ground-truth buffers for window calibration.
    scratch: TruthScratch,
    /// Last accepted half-width per sensor type (warm-start state).
    warm_width: Vec<Option<f64>>,
    /// Last accepted region half-size per sensor type (spatial warm-start
    /// state, mirroring `warm_width`).
    warm_half: Vec<Option<f64>>,
    /// Ground-truth evaluations performed so far (bisection probes plus
    /// final candidate scorings) — observability for the warm-start win.
    probes: u64,
}

impl QueryGenerator {
    /// Generator aiming at `target_fraction` involvement, firing every
    /// `every_epochs` epochs (the paper: every 20 epochs).
    pub fn new(target_fraction: f64, every_epochs: u64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&target_fraction), "target must be a fraction");
        assert!(every_epochs > 0, "query period must be positive");
        QueryGenerator {
            next_id: 0,
            target_fraction,
            every_epochs,
            candidates: COLD_CANDIDATES,
            spatial_fraction: 0.0,
            rng,
            scratch: TruthScratch::default(),
            warm_width: Vec::new(),
            warm_half: Vec::new(),
            probes: 0,
        }
    }

    /// Total ground-truth evaluations performed by calibration so far.
    pub fn ground_truth_probes(&self) -> u64 {
        self.probes
    }

    /// Allocate a query id from the generator's id space. External query
    /// sources (the daemon) share the space so scheduled and injected
    /// queries never collide.
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Write the dynamic state (id cursor, RNG position, warm-start
    /// widths, probe tally) to `w`. Targets, periods and candidate counts
    /// are configuration and are rebuilt by the constructor.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"QGEN");
        w.u64(self.next_id);
        w.rng(&self.rng);
        w.u64(self.probes);
        w.len_of(self.warm_width.len());
        for &v in &self.warm_width {
            w.opt_f64(v);
        }
        w.len_of(self.warm_half.len());
        for &v in &self.warm_half {
            w.opt_f64(v);
        }
    }

    /// Overlay state captured by [`QueryGenerator::snap`]. Calibration
    /// scratch buffers are transient and keep their current (reusable)
    /// allocation.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        r.tag(b"QGEN")?;
        self.next_id = r.u64()?;
        self.rng = r.rng()?;
        self.probes = r.u64()?;
        let n = r.seq_len(1)?;
        self.warm_width = (0..n).map(|_| r.opt_f64()).collect::<Result<_, _>>()?;
        let n = r.seq_len(1)?;
        self.warm_half = (0..n).map(|_| r.opt_f64()).collect::<Result<_, _>>()?;
        Ok(())
    }

    /// Make a fraction of the generated queries spatially scoped.
    pub fn with_spatial_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.spatial_fraction = fraction;
        self
    }

    /// The involvement target.
    pub fn target_fraction(&self) -> f64 {
        self.target_fraction
    }

    /// Whether a query fires at `epoch` (epoch 0 is warm-up, no query).
    pub fn should_fire(&self, epoch: u64) -> bool {
        epoch > 0 && epoch.is_multiple_of(self.every_epochs)
    }

    /// Generate a query for a uniformly random sensor type that currently
    /// has at least one alive carrier. Returns `None` if no type qualifies.
    /// When a spatial fraction is configured and `positions` is non-empty,
    /// the corresponding share of queries is spatially scoped.
    pub fn generate(
        &mut self,
        world: &SensorWorld,
        positions: &[dirq_net::Position],
        tree: &SpanningTree,
        is_alive: impl Fn(NodeId) -> bool + Copy,
    ) -> Option<CalibratedQuery> {
        let mut types: Vec<SensorType> = world.catalog().types().collect();
        // Random rotation so every type is exercised over a run.
        if types.is_empty() {
            return None;
        }
        let spatial = self.spatial_fraction > 0.0
            && !positions.is_empty()
            && self.rng.gen::<f64>() < self.spatial_fraction;
        let start = self.rng.gen_range(0..types.len());
        types.rotate_left(start);
        for t in types {
            let q = if spatial {
                self.generate_spatial_for_type(t, world, positions, tree, is_alive)
            } else {
                self.generate_for_type(t, world, tree, is_alive)
            };
            if q.is_some() {
                return q;
            }
        }
        None
    }

    /// Generate a spatially scoped query: the value window spans every
    /// current reading ("all readings of this type"), and the *region* is
    /// calibrated so that sources + forwarders hit the involvement target.
    ///
    /// Like the value-window path, region calibration **warm-starts from
    /// the previous accepted half-size per sensor type**: involvement is
    /// monotone in the region half-size and the target size drifts slowly
    /// between hotspot queries of a type (it is set by carrier density, not
    /// by the moving readings), so the warm bracket `[h₀/8, 8·h₀]` with the
    /// small candidate budget suffices. A cold full-diagonal calibration
    /// runs for the first spatial query of each type and as a fallback
    /// whenever the warm result misses the target badly.
    pub fn generate_spatial_for_type(
        &mut self,
        stype: SensorType,
        world: &SensorWorld,
        positions: &[dirq_net::Position],
        tree: &SpanningTree,
        is_alive: impl Fn(NodeId) -> bool + Copy,
    ) -> Option<CalibratedQuery> {
        let readings = world.readings(stype);
        let carriers: Vec<usize> = readings
            .iter()
            .enumerate()
            .filter(|&(i, v)| !v.is_nan() && is_alive(NodeId::from_index(i)))
            .map(|(i, _)| i)
            .collect();
        if carriers.is_empty() {
            return None;
        }
        let (lo, hi) = world.value_range(stype)?;
        let pad = (hi - lo).max(1.0) * 0.01;
        // The field diagonal bounds the useful region size.
        let max_half = positions.iter().map(|p| p.x.max(p.y)).fold(0.0f64, f64::max).max(1.0);

        let warm = self.warm_half.get(stype.index()).copied().flatten();
        let mut best = match warm {
            Some(h0) => {
                let hi_h = (h0 * WARM_BRACKET).min(max_half);
                let lo_h = (h0 / WARM_BRACKET).min(hi_h * 0.5);
                self.calibrate_region(
                    stype,
                    readings,
                    &carriers,
                    positions,
                    tree,
                    is_alive,
                    (lo - pad, hi + pad),
                    (lo_h, hi_h),
                    WARM_ITERS,
                    WARM_CANDIDATES,
                )
            }
            None => None,
        };
        let tolerance = (0.5 * self.target_fraction).max(2.0 / readings.len() as f64);
        if !best.as_ref().map(|&(err, _)| err <= tolerance).unwrap_or(false) {
            let cold = self.calibrate_region(
                stype,
                readings,
                &carriers,
                positions,
                tree,
                is_alive,
                (lo - pad, hi + pad),
                (0.0, max_half),
                COLD_ITERS,
                self.candidates,
            );
            best = match (best, cold) {
                (Some(a), Some(b)) => Some(if b.0 < a.0 { b } else { a }),
                (a, b) => b.or(a),
            };
        }

        let (_, cal) = best?;
        if cal.truth.sources.is_empty() {
            return None;
        }
        let idx = stype.index();
        if self.warm_half.len() <= idx {
            self.warm_half.resize(idx + 1, None);
        }
        self.warm_half[idx] = cal.query.region.map(|r| 0.5 * (r.x_max - r.x_min));
        self.next_id += 1;
        Some(cal)
    }

    /// Core region calibration: evaluate `candidates` random carrier
    /// centres, bisecting each half-size inside `bracket`, and return the
    /// candidate with the smallest involvement error (paired with it).
    #[allow(clippy::too_many_arguments)] // internal helper behind two entry points
    fn calibrate_region(
        &mut self,
        stype: SensorType,
        readings: &[f64],
        carriers: &[usize],
        positions: &[dirq_net::Position],
        tree: &SpanningTree,
        is_alive: impl Fn(NodeId) -> bool + Copy,
        window: (f64, f64),
        bracket: (f64, f64),
        iters: usize,
        candidates: usize,
    ) -> Option<(f64, CalibratedQuery)> {
        let n = readings.len();
        let mut best: Option<(f64, CalibratedQuery)> = None;
        for _ in 0..candidates {
            let centre = positions[carriers[self.rng.gen_range(0..carriers.len())]];
            let query_at = |h: f64, id: u64| {
                RangeQuery::value(QueryId(id), stype, window.0, window.1)
                    .with_region(dirq_net::Rect::centered(centre, h))
            };
            let (mut lo_h, mut hi_h) = bracket;
            for _ in 0..iters {
                let mid = 0.5 * (lo_h + hi_h);
                let probe = query_at(mid, self.next_id);
                self.probes += 1;
                let count = self.scratch.mark(n, tree, |i| {
                    is_alive(NodeId::from_index(i)) && probe.matches_at(readings[i], &positions[i])
                });
                if (count as f64 / n as f64) < self.target_fraction {
                    lo_h = mid;
                } else {
                    hi_h = mid;
                }
            }
            let h = 0.5 * (lo_h + hi_h);
            let query = query_at(h, self.next_id);
            self.probes += 1;
            let truth = ground_truth_for_query(readings, positions, tree, &query, is_alive);
            let err = (truth.involved_fraction() - self.target_fraction).abs();
            if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                best = Some((err, CalibratedQuery { query, truth }));
            }
        }
        best
    }

    /// Generate a calibrated query for a specific sensor type.
    ///
    /// Warm path: bisect inside a narrow bracket around the type's last
    /// accepted width. Cold path (first query of a type, or when the warm
    /// result misses the target by more than half of it): full-span
    /// bisection with the larger candidate budget.
    pub fn generate_for_type(
        &mut self,
        stype: SensorType,
        world: &SensorWorld,
        tree: &SpanningTree,
        is_alive: impl Fn(NodeId) -> bool + Copy,
    ) -> Option<CalibratedQuery> {
        let readings = world.readings(stype);
        let alive_values: Vec<f64> = readings
            .iter()
            .enumerate()
            .filter(|&(i, v)| !v.is_nan() && is_alive(NodeId::from_index(i)))
            .map(|(_, &v)| v)
            .collect();
        if alive_values.is_empty() {
            return None;
        }
        let span = {
            let lo = alive_values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = alive_values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (hi - lo).max(1e-9)
        };

        let warm = self.warm_width.get(stype.index()).copied().flatten();
        let mut best = match warm {
            Some(w0) => {
                let hi_w = (w0 * WARM_BRACKET).min(span);
                let lo_w = (w0 / WARM_BRACKET).min(hi_w * 0.5);
                self.calibrate_value_window(
                    stype,
                    readings,
                    &alive_values,
                    tree,
                    is_alive,
                    (lo_w, hi_w),
                    WARM_ITERS,
                    WARM_CANDIDATES,
                )
            }
            None => None,
        };
        let tolerance = (0.5 * self.target_fraction).max(2.0 / readings.len() as f64);
        if !best.as_ref().map(|&(err, _)| err <= tolerance).unwrap_or(false) {
            // Cold (re)calibration over the full value span.
            let cold = self.calibrate_value_window(
                stype,
                readings,
                &alive_values,
                tree,
                is_alive,
                (0.0, span),
                COLD_ITERS,
                self.candidates,
            );
            best = match (best, cold) {
                (Some(a), Some(b)) => Some(if b.0 < a.0 { b } else { a }),
                (a, b) => b.or(a),
            };
        }

        let (_, cal) = best?;
        if cal.truth.sources.is_empty() {
            return None;
        }
        let idx = stype.index();
        if self.warm_width.len() <= idx {
            self.warm_width.resize(idx + 1, None);
        }
        self.warm_width[idx] = Some(0.5 * (cal.query.hi - cal.query.lo));
        self.next_id += 1;
        Some(cal)
    }

    /// Core value-window calibration: evaluate `candidates` random centres,
    /// bisecting each half-width inside `bracket`, and return the candidate
    /// with the smallest involvement error (paired with that error).
    #[allow(clippy::too_many_arguments)] // internal helper behind two entry points
    fn calibrate_value_window(
        &mut self,
        stype: SensorType,
        readings: &[f64],
        alive_values: &[f64],
        tree: &SpanningTree,
        is_alive: impl Fn(NodeId) -> bool + Copy,
        bracket: (f64, f64),
        iters: usize,
        candidates: usize,
    ) -> Option<(f64, CalibratedQuery)> {
        let n = readings.len();
        let mut best: Option<(f64, CalibratedQuery)> = None;
        for _ in 0..candidates {
            let center = alive_values[self.rng.gen_range(0..alive_values.len())];
            // Bisect the half-width: involvement is monotone in w. Only the
            // involved *count* matters here, so the scratch-based evaluator
            // avoids materialising a GroundTruth per probe.
            let (mut lo_w, mut hi_w) = bracket;
            for _ in 0..iters {
                let mid = 0.5 * (lo_w + hi_w);
                self.probes += 1;
                let count = self.scratch.mark(n, tree, |i| {
                    let v = readings[i];
                    !v.is_nan()
                        && v >= center - mid
                        && v <= center + mid
                        && is_alive(NodeId::from_index(i))
                });
                if (count as f64 / n as f64) < self.target_fraction {
                    lo_w = mid;
                } else {
                    hi_w = mid;
                }
            }
            let w = 0.5 * (lo_w + hi_w);
            self.probes += 1;
            let truth = ground_truth(readings, tree, center - w, center + w, is_alive);
            let err = (truth.involved_fraction() - self.target_fraction).abs();
            let query = RangeQuery::value(QueryId(self.next_id), stype, center - w, center + w);
            if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                best = Some((err, CalibratedQuery { query, truth }));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{SensorAssignment, SensorCatalog};
    use crate::world::{SensorWorld, WorldConfig};
    use dirq_net::placement::{Placement, SinkPlacement};
    use dirq_net::radio::UnitDisk;
    use dirq_net::Topology;
    use dirq_sim::RngFactory;

    fn setup(seed: u64) -> (SensorWorld, Topology, SpanningTree) {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("topo");
        let topo = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            200,
        )
        .unwrap();
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        let assignment = SensorAssignment::heterogeneous(50, 4, 0.8, &mut f.stream("assign"));
        let world = SensorWorld::new(
            &WorldConfig::environmental(100.0),
            SensorCatalog::environmental(),
            assignment,
            &topo,
            &f,
        );
        (world, topo, tree)
    }

    #[test]
    fn query_matching_semantics() {
        let q = RangeQuery::value(QueryId(0), SensorType(0), 10.0, 20.0);
        assert!(q.matches(10.0) && q.matches(20.0) && q.matches(15.0));
        assert!(!q.matches(9.999) && !q.matches(20.001));
        assert!(!q.matches(f64::NAN));
        assert!(q.overlaps(5.0, 10.0));
        assert!(q.overlaps(20.0, 30.0));
        assert!(!q.overlaps(20.5, 30.0));
        assert!(q.overlaps(0.0, 100.0));
    }

    #[test]
    fn ground_truth_sources_and_paths() {
        // Line 0-1-2-3; only node 3 matches.
        let edges: Vec<(NodeId, NodeId)> = (0..3).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        let topo = Topology::from_edges(4, &edges);
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        let readings = vec![f64::NAN, 0.0, 0.0, 5.0];
        let gt = ground_truth(&readings, &tree, 4.0, 6.0, |_| true);
        assert_eq!(gt.sources, vec![NodeId(3)]);
        // Forwarders 1 and 2 are involved; root is not.
        assert_eq!(gt.involved, vec![false, true, true, true]);
        assert_eq!(gt.involved_count, 3);
        assert!((gt.involved_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_respects_liveness() {
        let edges: Vec<(NodeId, NodeId)> = (0..3).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        let topo = Topology::from_edges(4, &edges);
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        let readings = vec![f64::NAN, 5.0, 0.0, 5.0];
        let gt = ground_truth(&readings, &tree, 4.0, 6.0, |n| n != NodeId(3));
        assert_eq!(gt.sources, vec![NodeId(1)]);
        assert_eq!(gt.involved_count, 1);
    }

    #[test]
    fn wider_window_never_reduces_involvement() {
        let (world, _, tree) = setup(41);
        let readings = world.readings(SensorType(0));
        let center = 20.0;
        let mut prev = 0;
        for w in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let gt = ground_truth(readings, &tree, center - w, center + w, |_| true);
            assert!(gt.involved_count >= prev, "involvement must be monotone in width");
            prev = gt.involved_count;
        }
    }

    #[test]
    fn generator_hits_target_fractions() {
        let (world, _, tree) = setup(42);
        for (target, tolerance) in [(0.2, 0.10), (0.4, 0.10), (0.6, 0.15)] {
            let mut generator = QueryGenerator::new(target, 20, RngFactory::new(42).stream("qgen"));
            let mut total_err = 0.0;
            let trials = 20;
            for _ in 0..trials {
                let cal = generator
                    .generate(&world, &[], &tree, |_| true)
                    .expect("calibration should succeed");
                total_err += (cal.truth.involved_fraction() - target).abs();
                assert!(!cal.truth.sources.is_empty());
                assert!(cal.query.lo < cal.query.hi);
            }
            let mean_err = total_err / trials as f64;
            assert!(
                mean_err < tolerance,
                "target {target}: mean calibration error {mean_err:.3} > {tolerance}"
            );
        }
    }

    #[test]
    fn matches_at_honours_region() {
        let q = RangeQuery::value(QueryId(1), SensorType(0), 0.0, 10.0)
            .with_region(Rect::new(Position::new(0.0, 0.0), Position::new(5.0, 5.0)));
        assert!(q.matches_at(5.0, &Position::new(2.0, 2.0)));
        assert!(!q.matches_at(5.0, &Position::new(9.0, 2.0)), "outside the region");
        assert!(!q.matches_at(50.0, &Position::new(2.0, 2.0)), "outside the window");
        // Without a region the position is irrelevant.
        let open = RangeQuery::value(QueryId(2), SensorType(0), 0.0, 10.0);
        assert!(open.matches_at(5.0, &Position::new(1e6, 1e6)));
    }

    #[test]
    fn ground_truth_for_query_applies_region() {
        let edges: Vec<(NodeId, NodeId)> = (0..3).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        let topo = Topology::from_edges(4, &edges);
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        let readings = vec![f64::NAN, 5.0, 5.0, 5.0];
        // from_edges lays nodes out at x = 0, 1, 2, 3.
        let positions: Vec<Position> = (0..4).map(|i| Position::new(i as f64, 0.0)).collect();
        let q = RangeQuery::value(QueryId(0), SensorType(0), 4.0, 6.0)
            .with_region(Rect::new(Position::new(2.5, -1.0), Position::new(4.0, 1.0)));
        let gt = ground_truth_for_query(&readings, &positions, &tree, &q, |_| true);
        assert_eq!(gt.sources, vec![NodeId(3)], "only node 3 is in the region");
        // Forwarders 1 and 2 still count as involved.
        assert_eq!(gt.involved_count, 3);
    }

    #[test]
    fn spatial_generator_hits_target() {
        let (world, topo, tree) = setup(45);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(45).stream("sg"))
            .with_spatial_fraction(1.0);
        let mut total_err = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let cal = g
                .generate(&world, topo.positions(), &tree, |_| true)
                .expect("spatial calibration should succeed");
            assert!(cal.query.region.is_some(), "query must be spatially scoped");
            total_err += (cal.truth.involved_fraction() - 0.4).abs();
        }
        let mean_err = total_err / trials as f64;
        assert!(mean_err < 0.12, "spatial calibration error {mean_err:.3}");
    }

    #[test]
    fn spatial_fraction_zero_never_produces_regions() {
        let (world, topo, tree) = setup(46);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(46).stream("sg0"));
        for _ in 0..5 {
            let cal = g.generate(&world, topo.positions(), &tree, |_| true).unwrap();
            assert!(cal.query.region.is_none());
        }
    }

    #[test]
    fn warm_start_cuts_ground_truth_probes() {
        let (world, _, tree) = setup(47);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(47).stream("warm"));
        g.generate(&world, &[], &tree, |_| true).unwrap();
        let cold = g.ground_truth_probes();
        // The first query of a type pays the full calibration: 8 candidates
        // × (24 probes + 1 scoring) = 200 per type attempted.
        assert!(cold >= 200 && cold.is_multiple_of(200), "cold calibration cost changed: {cold}");
        let mut warm_total = 0;
        let trials = 16;
        for _ in 0..trials {
            let before = g.ground_truth_probes();
            g.generate(&world, &[], &tree, |_| true).unwrap();
            warm_total += g.ground_truth_probes() - before;
        }
        let warm_mean = warm_total as f64 / trials as f64;
        // Some of the 16 draws hit a not-yet-warm sensor type (cold again);
        // the mean must still be far below the 200-probe cold cost.
        assert!(warm_mean < 100.0, "warm-start saved too little: {warm_mean:.0} probes/query");
    }

    #[test]
    fn spatial_warm_start_cuts_ground_truth_probes() {
        let (world, topo, tree) = setup(50);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(50).stream("spatial-warm"))
            .with_spatial_fraction(1.0);
        g.generate(&world, topo.positions(), &tree, |_| true).unwrap();
        let cold = g.ground_truth_probes();
        // First spatial query of a type pays the full region calibration:
        // 8 candidates × (24 probes + 1 scoring) = 200 per type attempted.
        assert!(cold >= 200 && cold.is_multiple_of(200), "cold spatial cost changed: {cold}");
        let mut warm_total = 0;
        let trials = 16;
        for _ in 0..trials {
            let before = g.ground_truth_probes();
            g.generate(&world, topo.positions(), &tree, |_| true).unwrap();
            warm_total += g.ground_truth_probes() - before;
        }
        let warm_mean = warm_total as f64 / trials as f64;
        // Some draws still hit a cold type or trip the fallback; the mean
        // must land near the 3 × (10 + 1) = 33-probe warm cost.
        assert!(warm_mean < 100.0, "spatial warm-start saved too little: {warm_mean:.0}");
        // And the pure warm path costs exactly 3 candidates × (10
        // bisections + 1 scoring) = 33 probes — most trials should hit it.
        let mut g2 = QueryGenerator::new(0.4, 20, RngFactory::new(50).stream("spatial-warm"))
            .with_spatial_fraction(1.0);
        let mut exact_warm = 0;
        for _ in 0..=trials {
            let before = g2.ground_truth_probes();
            g2.generate(&world, topo.positions(), &tree, |_| true).unwrap();
            if g2.ground_truth_probes() - before == 33 {
                exact_warm += 1;
            }
        }
        assert!(exact_warm >= trials / 2, "only {exact_warm} pure 33-probe warm calibrations");
    }

    #[test]
    fn spatial_warm_start_preserves_accuracy() {
        let (world, topo, tree) = setup(51);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(51).stream("spatial-warm-acc"))
            .with_spatial_fraction(1.0);
        // Warm every type up first.
        for _ in 0..8 {
            g.generate(&world, topo.positions(), &tree, |_| true).unwrap();
        }
        let mut total_err = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let cal = g.generate(&world, topo.positions(), &tree, |_| true).unwrap();
            assert!(cal.query.region.is_some());
            total_err += (cal.truth.involved_fraction() - 0.4).abs();
        }
        let mean_err = total_err / trials as f64;
        assert!(mean_err < 0.12, "warm spatial calibration error {mean_err:.3}");
    }

    #[test]
    fn warm_start_preserves_calibration_accuracy() {
        let (world, _, tree) = setup(48);
        for target in [0.2, 0.4] {
            let mut g = QueryGenerator::new(target, 20, RngFactory::new(48).stream("warm-acc"));
            // Warm every type up first.
            for _ in 0..8 {
                g.generate(&world, &[], &tree, |_| true).unwrap();
            }
            let mut total_err = 0.0;
            let trials = 20;
            for _ in 0..trials {
                let cal = g.generate(&world, &[], &tree, |_| true).unwrap();
                total_err += (cal.truth.involved_fraction() - target).abs();
            }
            let mean_err = total_err / trials as f64;
            assert!(mean_err < 0.10, "target {target}: warm-started error {mean_err:.3}");
        }
    }

    #[test]
    fn warm_start_recovers_when_distribution_shifts() {
        // Calibrate against full liveness, then kill half the carriers:
        // the warm bracket no longer matches, and the cold fallback must
        // still deliver a usable window.
        let (world, _, tree) = setup(49);
        let mut g = QueryGenerator::new(0.3, 20, RngFactory::new(49).stream("warm-shift"));
        for _ in 0..4 {
            g.generate(&world, &[], &tree, |_| true).unwrap();
        }
        let cal = g
            .generate(&world, &[], &tree, |n: NodeId| n.index().is_multiple_of(2))
            .expect("fallback calibration should still produce a query");
        assert!(!cal.truth.sources.is_empty());
        assert!(cal.truth.sources.iter().all(|s| s.index() % 2 == 0));
    }

    #[test]
    fn generator_fires_on_schedule() {
        let g = QueryGenerator::new(0.4, 20, RngFactory::new(1).stream("qg"));
        assert!(!g.should_fire(0));
        assert!(g.should_fire(20));
        assert!(!g.should_fire(21));
        assert!(g.should_fire(4000));
    }

    #[test]
    fn generator_assigns_unique_ids() {
        let (world, _, tree) = setup(43);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(2).stream("qg2"));
        let a = g.generate(&world, &[], &tree, |_| true).unwrap();
        let b = g.generate(&world, &[], &tree, |_| true).unwrap();
        assert_ne!(a.query.id, b.query.id);
    }

    #[test]
    fn generator_none_when_no_carriers_alive() {
        let (world, _, tree) = setup(44);
        let mut g = QueryGenerator::new(0.4, 20, RngFactory::new(3).stream("qg3"));
        assert!(g.generate(&world, &[], &tree, |_| false).is_none());
    }
}
