//! Sensor types, catalog and heterogeneous assignment.
//!
//! The paper stresses two points this module encodes: networks are
//! **heterogeneous** ("different nodes can possess a different combination
//! of sensors" — unlike TinyDB), and new sensor types can be added **after
//! deployment** without global reconfiguration.

use dirq_sim::SimRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Identifier of a sensor type (index into the [`SensorCatalog`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SensorType(pub u8);

impl SensorType {
    /// This type as an array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SensorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Descriptive metadata for one sensor type.
#[derive(Clone, Debug)]
pub struct SensorDescriptor {
    /// Human-readable name ("temperature").
    pub name: String,
    /// Unit string ("°C").
    pub unit: String,
}

/// Registry of sensor types. Types can be registered at any time — the
/// paper's post-deployment extensibility.
#[derive(Clone, Debug, Default)]
pub struct SensorCatalog {
    descriptors: Vec<SensorDescriptor>,
}

impl SensorCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        SensorCatalog::default()
    }

    /// The paper's four-type environmental-monitoring catalog.
    pub fn environmental() -> Self {
        let mut c = SensorCatalog::new();
        c.register("temperature", "°C");
        c.register("humidity", "%RH");
        c.register("light", "lux");
        c.register("co2", "ppm");
        c
    }

    /// Register a new sensor type; returns its id.
    pub fn register(&mut self, name: &str, unit: &str) -> SensorType {
        assert!(self.descriptors.len() < 256, "catalog full (u8 ids)");
        assert!(
            self.descriptors.iter().all(|d| d.name != name),
            "sensor type {name:?} already registered"
        );
        let id = SensorType(self.descriptors.len() as u8);
        self.descriptors.push(SensorDescriptor { name: name.to_owned(), unit: unit.to_owned() });
        id
    }

    /// Metadata of `t`.
    pub fn descriptor(&self, t: SensorType) -> &SensorDescriptor {
        &self.descriptors[t.index()]
    }

    /// Look a type up by name.
    pub fn by_name(&self, name: &str) -> Option<SensorType> {
        self.descriptors.iter().position(|d| d.name == name).map(|i| SensorType(i as u8))
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether no types are registered.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterator over all type ids.
    pub fn types(&self) -> impl Iterator<Item = SensorType> {
        (0..self.descriptors.len()).map(|i| SensorType(i as u8))
    }
}

/// Which sensors each node carries.
#[derive(Clone, Debug)]
pub struct SensorAssignment {
    /// `has[node][type.index()]`.
    has: Vec<Vec<bool>>,
    /// Bumped on every mutation, so carried-mask caches (the world's hot
    /// generation loop keeps one) can invalidate without deep comparison.
    version: u64,
}

impl SensorAssignment {
    /// Every node carries every type (TinyDB-style homogeneous network).
    pub fn homogeneous(n_nodes: usize, n_types: usize) -> Self {
        SensorAssignment { has: vec![vec![true; n_types]; n_nodes], version: 0 }
    }

    /// Heterogeneous assignment: each type is carried by a random subset of
    /// nodes with the given `coverage` fraction (at least one node per
    /// type). The root (node 0) carries no sensors — it is the gateway.
    pub fn heterogeneous(n_nodes: usize, n_types: usize, coverage: f64, rng: &mut SimRng) -> Self {
        assert!(n_nodes >= 2, "need at least the root and one sensing node");
        assert!((0.0..=1.0).contains(&coverage), "coverage must be a fraction");
        let mut has = vec![vec![false; n_types]; n_nodes];
        let candidates: Vec<usize> = (1..n_nodes).collect();
        #[allow(clippy::needless_range_loop)] // `t` indexes the inner axis
        for t in 0..n_types {
            let count = ((candidates.len() as f64 * coverage).round() as usize).max(1);
            let mut chosen = candidates.clone();
            chosen.shuffle(rng);
            for &node in chosen.iter().take(count) {
                has[node][t] = true;
            }
        }
        // Every sensing node should carry at least one type, so no node is
        // permanently silent in the experiments.
        for row in has.iter_mut().skip(1) {
            if !row.iter().any(|&b| b) {
                let t = rng.gen_range(0..n_types);
                row[t] = true;
            }
        }
        SensorAssignment { has, version: 0 }
    }

    /// Mutation counter: changes whenever the assignment does.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether `node` carries `t`.
    #[inline]
    pub fn has(&self, node: usize, t: SensorType) -> bool {
        self.has[node].get(t.index()).copied().unwrap_or(false)
    }

    /// `node`'s carried types as a bitmask (bit `t.index()`), for hot
    /// loops that test several types per node: one row fetch instead of a
    /// pointer chase per `(node, type)` pair. Types beyond 64 (far above
    /// the u8 catalog space actually in use) are not representable.
    #[inline]
    pub fn carried_mask(&self, node: usize) -> u64 {
        self.has[node].iter().take(64).enumerate().fold(0u64, |m, (i, &b)| m | (u64::from(b) << i))
    }

    /// Add a sensor to a node at runtime (post-deployment extension).
    pub fn add(&mut self, node: usize, t: SensorType) {
        if self.has[node].len() <= t.index() {
            self.has[node].resize(t.index() + 1, false);
        }
        self.has[node][t.index()] = true;
        self.version += 1;
    }

    /// Remove a sensor from a node.
    pub fn remove(&mut self, node: usize, t: SensorType) {
        if let Some(slot) = self.has[node].get_mut(t.index()) {
            *slot = false;
            self.version += 1;
        }
    }

    /// Write the carried-sensor matrix to `w` (the version counter is
    /// cache bookkeeping, not state — restore bumps it instead).
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"ASGN");
        w.len_of(self.has.len());
        for row in &self.has {
            w.bools(row);
        }
    }

    /// Overlay a matrix captured by [`SensorAssignment::snap`]. The node
    /// count must match; the version is bumped so carried-mask caches
    /// rebuild.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        r.tag(b"ASGN")?;
        let pos = r.position();
        let n = r.seq_len(8)?;
        if n != self.has.len() {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "assignment node count mismatch",
            });
        }
        let mut has = Vec::with_capacity(n);
        for _ in 0..n {
            has.push(r.bools()?);
        }
        self.has = has;
        self.version += 1;
        Ok(())
    }

    /// Nodes carrying `t`.
    pub fn carriers(&self, t: SensorType) -> Vec<usize> {
        (0..self.has.len()).filter(|&n| self.has(n, t)).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.has.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.has.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    #[test]
    fn environmental_catalog_has_four_types() {
        let c = SensorCatalog::environmental();
        assert_eq!(c.len(), 4);
        assert_eq!(c.by_name("temperature"), Some(SensorType(0)));
        assert_eq!(c.descriptor(SensorType(2)).name, "light");
        assert_eq!(c.by_name("missing"), None);
    }

    #[test]
    fn registration_appends_and_rejects_duplicates() {
        let mut c = SensorCatalog::environmental();
        let t = c.register("soil_moisture", "%");
        assert_eq!(t, SensorType(4));
        assert_eq!(c.len(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_rejected() {
        let mut c = SensorCatalog::environmental();
        c.register("temperature", "K");
    }

    #[test]
    fn homogeneous_assignment() {
        let a = SensorAssignment::homogeneous(5, 3);
        for n in 0..5 {
            for t in 0..3u8 {
                assert!(a.has(n, SensorType(t)));
            }
        }
    }

    #[test]
    fn heterogeneous_assignment_properties() {
        let mut rng = RngFactory::new(8).stream("assign");
        let a = SensorAssignment::heterogeneous(50, 4, 0.5, &mut rng);
        // Root carries nothing.
        for t in 0..4u8 {
            assert!(!a.has(0, SensorType(t)), "root must carry no sensors");
            let carriers = a.carriers(SensorType(t));
            assert!(!carriers.is_empty(), "every type needs a carrier");
            // Coverage should be near 50% of the 49 sensing nodes.
            assert!((15..=35).contains(&carriers.len()), "carriers: {}", carriers.len());
        }
        // Every sensing node has at least one sensor.
        for n in 1..50 {
            assert!((0..4u8).any(|t| a.has(n, SensorType(t))), "node {n} has no sensors");
        }
    }

    #[test]
    fn runtime_add_remove() {
        let mut rng = RngFactory::new(9).stream("assign2");
        let mut a = SensorAssignment::heterogeneous(10, 2, 0.5, &mut rng);
        let new_type = SensorType(5);
        assert!(!a.has(3, new_type));
        a.add(3, new_type);
        assert!(a.has(3, new_type));
        a.remove(3, new_type);
        assert!(!a.has(3, new_type));
    }
}
