//! Lightweight event tracing.
//!
//! A bounded ring buffer of timestamped strings, gated by a level so the
//! hot path pays only a branch when tracing is off. Used by examples and
//! debugging sessions; experiments keep it disabled.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Verbosity levels, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Tracing disabled.
    Off,
    /// Protocol-significant events only (tree changes, update storms).
    Info,
    /// Per-message events.
    Debug,
    /// Everything, including per-slot MAC activity.
    Trace,
}

/// One recorded trace entry.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the event occurred.
    pub time: SimTime,
    /// Verbosity class of the entry.
    pub level: TraceLevel,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:?}: {}", self.time, self.level, self.message)
    }
}

/// Bounded ring buffer of trace entries.
pub struct Tracer {
    level: TraceLevel,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::new(TraceLevel::Off, 0)
    }

    /// A tracer recording entries at or below `level`, keeping the most
    /// recent `capacity` entries.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer { level, capacity, entries: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// Whether `level` messages would currently be recorded. Call this
    /// before building an expensive message.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level != TraceLevel::Off && level <= self.level
    }

    /// Record a message (if enabled at `level`).
    pub fn record(
        &mut self,
        time: SimTime,
        level: TraceLevel,
        make_message: impl FnOnce() -> String,
    ) {
        if !self.enabled(level) {
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { time, level, message: make_message() });
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime(1), TraceLevel::Info, || "x".into());
        assert!(t.is_empty());
        assert!(!t.enabled(TraceLevel::Info));
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(TraceLevel::Info, 10);
        t.record(SimTime(1), TraceLevel::Info, || "keep".into());
        t.record(SimTime(2), TraceLevel::Debug, || "drop".into());
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().message, "keep");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::new(TraceLevel::Trace, 3);
        for i in 0..5u64 {
            t.record(SimTime(i), TraceLevel::Info, || format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn lazy_message_not_built_when_disabled() {
        let mut t = Tracer::new(TraceLevel::Info, 4);
        let mut built = false;
        t.record(SimTime(0), TraceLevel::Trace, || {
            built = true;
            String::new()
        });
        assert!(!built, "message closure must not run for filtered levels");
    }

    #[test]
    fn display_formatting() {
        let e = TraceEntry { time: SimTime(42), level: TraceLevel::Info, message: "hello".into() };
        let s = format!("{e}");
        assert!(s.contains("42") && s.contains("hello"));
    }
}
