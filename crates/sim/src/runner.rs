//! Parallel parameter-sweep executor.
//!
//! Each figure in the paper sweeps a parameter (threshold δ, relevant-node
//! percentage, …) over full 20 000-epoch simulations. Individual simulations
//! are single-threaded and deterministic; the sweep fans the parameter
//! points across worker threads and returns results in input order, so
//! parallel and sequential execution produce byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

/// Run `f` over every element of `params`, in parallel, preserving order.
///
/// `threads = 0` selects the available CPU parallelism. Panics in workers
/// are propagated to the caller.
///
/// ```
/// let squares = dirq_sim::runner::run_sweep(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_sweep<P, R, F>(params: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    if params.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(threads, params.len());
    if threads <= 1 {
        return params.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= params.len() {
                        break;
                    }
                    let r = f(&params[i]);
                    // The receiver lives as long as the scope; send can only
                    // fail if the main thread panicked, in which case the
                    // whole scope unwinds anyway.
                    let _ = tx.send((i, r));
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..params.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker thread panicked before producing a result"))
            .collect()
    })
}

/// Run a parameter matrix with seed replication: every element of
/// `params` is evaluated `replicates` times (`f(param, replicate)`), all
/// cells fanned out over one worker pool, and the results returned as
/// `out[param_index][replicate]`.
///
/// Like [`run_sweep`], output ordering is independent of `threads`, so a
/// fingerprint over the returned matrix is reproducible across machines
/// and thread counts. `f` receives the replicate index so callers can
/// derive per-replicate seeds deterministically.
///
/// ```
/// let m = dirq_sim::runner::run_matrix(&[10u64, 20], 3, 2, |&p, rep| p + rep as u64);
/// assert_eq!(m, vec![vec![10, 11, 12], vec![20, 21, 22]]);
/// ```
pub fn run_matrix<P, R, F>(params: &[P], replicates: usize, threads: usize, f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, usize) -> R + Sync,
{
    let cells: Vec<(usize, usize)> =
        (0..params.len()).flat_map(|i| (0..replicates).map(move |r| (i, r))).collect();
    let flat = run_sweep(&cells, threads, |&(i, r)| f(&params[i], r));
    let mut rows: Vec<Vec<R>> = (0..params.len()).map(|_| Vec::with_capacity(replicates)).collect();
    for ((i, _), result) in cells.into_iter().zip(flat) {
        rows[i].push(result);
    }
    rows
}

/// Decide how many worker threads to use for `jobs` work items.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.min(jobs).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = run_sweep(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let params: Vec<u64> = (0..257).collect();
        let out = run_sweep(&params, 8, |&x| x * 3);
        assert_eq!(out, params.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_used_for_single_thread() {
        let params = vec![1, 2, 3];
        let out = run_sweep(&params, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so completion order inverts submission order.
        let params: Vec<u64> = (0..32).collect();
        let out = run_sweep(&params, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, params);
    }

    #[test]
    fn effective_threads_bounds() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn matrix_groups_by_param_in_order() {
        let params: Vec<u64> = (0..9).collect();
        let m = run_matrix(&params, 4, 3, |&p, rep| p * 10 + rep as u64);
        assert_eq!(m.len(), 9);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(
                row,
                &vec![i as u64 * 10, i as u64 * 10 + 1, i as u64 * 10 + 2, i as u64 * 10 + 3]
            );
        }
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let params = [3u64, 1, 4, 1, 5];
        let runs: Vec<Vec<Vec<u64>>> = [1usize, 2, 8]
            .iter()
            .map(|&t| run_matrix(&params, 2, t, |&p, rep| p ^ rep as u64))
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn matrix_handles_empty_axes() {
        let none: Vec<Vec<u32>> = run_matrix(&[] as &[u32], 3, 2, |&x, _| x);
        assert!(none.is_empty());
        let zero_reps = run_matrix(&[1u32, 2], 0, 2, |&x, _| x);
        assert_eq!(zero_reps, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let params = vec![0u32, 1, 2];
        let _ = run_sweep(&params, 2, |&x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
