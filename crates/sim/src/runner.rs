//! Parallel parameter-sweep executor.
//!
//! Each figure in the paper sweeps a parameter (threshold δ, relevant-node
//! percentage, …) over full 20 000-epoch simulations. Individual simulations
//! are single-threaded and deterministic; the sweep fans the parameter
//! points across worker threads and returns results in input order, so
//! parallel and sequential execution produce byte-identical reports.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel;

/// Run `f` over every element of `params`, in parallel, preserving order.
///
/// `threads = 0` selects the available CPU parallelism. Panics in workers
/// are propagated to the caller.
///
/// ```
/// let squares = dirq_sim::runner::run_sweep(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_sweep<P, R, F>(params: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    if params.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(threads, params.len());
    if threads <= 1 {
        return params.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= params.len() {
                        break;
                    }
                    let r = f(&params[i]);
                    // The receiver lives as long as the scope; send can only
                    // fail if the main thread panicked, in which case the
                    // whole scope unwinds anyway.
                    let _ = tx.send((i, r));
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..params.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker thread panicked before producing a result"))
            .collect()
    })
}

/// Run a parameter matrix with seed replication: every element of
/// `params` is evaluated `replicates` times (`f(param, replicate)`), all
/// cells fanned out over one worker pool, and the results returned as
/// `out[param_index][replicate]`.
///
/// Like [`run_sweep`], output ordering is independent of `threads`, so a
/// fingerprint over the returned matrix is reproducible across machines
/// and thread counts. `f` receives the replicate index so callers can
/// derive per-replicate seeds deterministically.
///
/// ```
/// let m = dirq_sim::runner::run_matrix(&[10u64, 20], 3, 2, |&p, rep| p + rep as u64);
/// assert_eq!(m, vec![vec![10, 11, 12], vec![20, 21, 22]]);
/// ```
pub fn run_matrix<P, R, F>(params: &[P], replicates: usize, threads: usize, f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, usize) -> R + Sync,
{
    let cells: Vec<(usize, usize)> =
        (0..params.len()).flat_map(|i| (0..replicates).map(move |r| (i, r))).collect();
    let flat = run_sweep(&cells, threads, |&(i, r)| f(&params[i], r));
    let mut rows: Vec<Vec<R>> = (0..params.len()).map(|_| Vec::with_capacity(replicates)).collect();
    for ((i, _), result) in cells.into_iter().zip(flat) {
        rows[i].push(result);
    }
    rows
}

/// Decide how many worker threads to use for `jobs` work items.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.min(jobs).max(1)
}

/// Generation tag mask of [`PoolInner::cursor`] (high 32 bits).
const GEN_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// An erased [`WorkerPool`] job: the item closure (a raw pointer, so the
/// cell may legally outlive the closure between generations), the item
/// count, and the generation tag the job belongs to. Carrying the tag
/// *inside* the job pins closure, count and generation together: a
/// helper that reads a newer job than the `seq` it woke on simply claims
/// against the newer generation (or finds the cursor tag mismatched and
/// retires) — it can never pair an old count with a new cursor. The
/// pointer is re-borrowed only under a successful same-generation claim,
/// which guarantees the closure is still alive (`run` has not returned).
type Job = (*const (dyn Fn(usize) + Sync), usize, u64);

/// A persistent work-stealing worker pool for **fine-grained, repeated**
/// fan-outs — the reuse primitive the per-slot MAC parallelism is built
/// on. [`run_sweep`] spawns scoped threads per call, which is fine for
/// second-long simulation jobs but prohibitive for the microsecond-scale
/// work inside one MAC slot; a `WorkerPool` spawns its helpers once and
/// re-dispatches to them tens of thousands of times per second.
///
/// ## Execution model
///
/// [`WorkerPool::run`] publishes `items` independent work items; the
/// calling thread and every helper claim items **dynamically** through an
/// atomic cursor and `run` returns once all items completed. Two
/// consequences:
///
/// * **No stragglers by construction** — on a machine with fewer cores
///   than workers (including the degenerate 1-core case) the caller
///   simply claims every item itself and never blocks on a helper; a
///   helper that wakes late finds the cursor exhausted and goes back to
///   sleep off the critical path.
/// * **Scheduling-independent results are the caller's contract** — items
///   may execute on any thread in any interleaving, so callers that need
///   determinism must make items independent and merge their outputs in a
///   fixed order (the MAC merges per-listener output in listener order).
///
/// The cursor carries a generation tag so a helper parked through several
/// `run` calls can never claim (or double-claim) items from a generation
/// it did not observe; claims use compare-and-swap, so a stale helper
/// never consumes another generation's item slot.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolInner {
    /// Packed claim cursor: high 32 bits = generation, low 32 = next item.
    cursor: AtomicU64,
    /// Items completed in the current generation.
    completed: AtomicUsize,
    /// Current generation; stored after the job is published.
    seq: AtomicU64,
    stop: AtomicBool,
    /// Set by a panicking item of the **current** generation; cleared at
    /// the start of every `run`.
    poisoned: AtomicBool,
    /// First panic payload of the current generation, re-raised by `run`.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The published job: erased closure + item count. Behind a mutex so
    /// a helper waking on a stale generation can never read the cell
    /// concurrently with the next `run`'s overwrite; a helper that reads
    /// a job it did not observe the generation of is stopped by the
    /// cursor's generation tag before it can execute anything.
    job: Mutex<Option<Job>>,
}

// SAFETY: the raw closure pointer inside `job` is only dereferenced under
// a same-generation cursor claim, and `run` does not return until every
// claimed item completed — so the pointee is alive at every dereference
// (the pointer itself may dangle between generations, which is fine for a
// raw pointer). Everything else in `PoolInner` is Sync.
unsafe impl Send for PoolInner {}
unsafe impl Sync for PoolInner {}

impl WorkerPool {
    /// Pool targeting `workers` total threads (the caller of
    /// [`WorkerPool::run`] counts as one). Helper threads are clamped to
    /// the machine's available parallelism — extra logical workers change
    /// nothing about results, so there is no point paying wake-ups for
    /// helpers the hardware cannot run.
    pub fn new(workers: usize) -> Self {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let helpers = workers.min(hw).saturating_sub(1);
        let inner = Arc::new(PoolInner {
            cursor: AtomicU64::new(0),
            completed: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            job: Mutex::new(None),
        });
        let handles = (0..helpers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || helper_loop(&inner))
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// Total threads that can claim items (helpers + the caller).
    pub fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Execute `f(0), …, f(items - 1)`, each exactly once, distributed
    /// over the caller and the helper threads; returns when every item has
    /// completed. Panics if any item of **this** call panicked (after all
    /// items finished, so borrowed data stays valid throughout); the pool
    /// remains usable afterwards.
    ///
    /// Takes `&mut self`: one job at a time per pool — concurrent `run`
    /// calls would race the generation protocol.
    pub fn run(&mut self, items: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(items < u32::MAX as usize, "item count exceeds the cursor's range");
        if items == 0 {
            return;
        }
        let inner = &*self.inner;
        let seq = inner.seq.load(Ordering::Relaxed).wrapping_add(1);
        let gen = (seq & 0xFFFF_FFFF) << 32;
        // The lifetime erasure is sound because the pointer is only
        // re-borrowed under a same-generation claim, and `run` does not
        // return until every claimed item completed (see the struct docs).
        let f_erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        *inner.job.lock().expect("pool job mutex poisoned") = Some((f_erased, items, gen));
        inner.poisoned.store(false, Ordering::Relaxed);
        *inner.panic_payload.lock().expect("pool panic mutex poisoned") = None;
        inner.completed.store(0, Ordering::Relaxed);
        inner.cursor.store(gen, Ordering::Release);
        inner.seq.store(seq, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        claim_items(inner, gen, items, f_erased);
        let mut spins = 0u32;
        while inner.completed.load(Ordering::Acquire) < items {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                // A helper still owns an item; give it the core.
                std::thread::yield_now();
            }
        }
        if inner.poisoned.load(Ordering::Acquire) {
            // Re-raise the first failed item's panic with its original
            // payload so the real assertion message survives. (Take it and
            // release the lock *before* unwinding, or the mutex poisons.)
            let payload = inner.panic_payload.lock().expect("pool panic mutex poisoned").take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("a WorkerPool item panicked"),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and execute items of generation `gen` until the cursor leaves the
/// generation or exhausts. CAS (not fetch-add) so a stale claimer can
/// never consume a slot of a generation it does not belong to.
fn claim_items(inner: &PoolInner, gen: u64, items: usize, f: *const (dyn Fn(usize) + Sync)) {
    loop {
        let cur = inner.cursor.load(Ordering::Acquire);
        let i = (cur & !GEN_MASK) as usize;
        if cur & GEN_MASK != gen || i >= items {
            return;
        }
        if inner
            .cursor
            .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        // SAFETY: a successful same-generation claim means the publishing
        // `run` is still waiting on `completed`, so the closure is alive.
        let f = unsafe { &*f };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
            let mut slot = inner.panic_payload.lock().expect("pool panic mutex poisoned");
            slot.get_or_insert(payload);
            drop(slot);
            inner.poisoned.store(true, Ordering::Release);
        }
        inner.completed.fetch_add(1, Ordering::Release);
    }
}

fn helper_loop(inner: &PoolInner) {
    let mut last_seq = 0u64;
    loop {
        // Wait for a new generation: spin briefly (dispatches arrive every
        // few microseconds mid-frame), then park.
        let mut spins = 0u32;
        let seq = loop {
            let s = inner.seq.load(Ordering::Acquire);
            if s != last_seq {
                break s;
            }
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < 4_096 {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        };
        last_seq = seq;
        // The mutex makes this read safe against a concurrent republish by
        // a later `run`. The generation comes from the job itself, never
        // from the observed `seq`: reading a newer job than the wake-up
        // seq just means claiming against the newer generation.
        let Some((f, items, gen)) = *inner.job.lock().expect("pool job mutex poisoned") else {
            continue;
        };
        claim_items(inner, gen, items, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = run_sweep(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let params: Vec<u64> = (0..257).collect();
        let out = run_sweep(&params, 8, |&x| x * 3);
        assert_eq!(out, params.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_used_for_single_thread() {
        let params = vec![1, 2, 3];
        let out = run_sweep(&params, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so completion order inverts submission order.
        let params: Vec<u64> = (0..32).collect();
        let out = run_sweep(&params, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, params);
    }

    #[test]
    fn effective_threads_bounds() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn matrix_groups_by_param_in_order() {
        let params: Vec<u64> = (0..9).collect();
        let m = run_matrix(&params, 4, 3, |&p, rep| p * 10 + rep as u64);
        assert_eq!(m.len(), 9);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(
                row,
                &vec![i as u64 * 10, i as u64 * 10 + 1, i as u64 * 10 + 2, i as u64 * 10 + 3]
            );
        }
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let params = [3u64, 1, 4, 1, 5];
        let runs: Vec<Vec<Vec<u64>>> = [1usize, 2, 8]
            .iter()
            .map(|&t| run_matrix(&params, 2, t, |&p, rep| p ^ rep as u64))
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn matrix_handles_empty_axes() {
        let none: Vec<Vec<u32>> = run_matrix(&[] as &[u32], 3, 2, |&x, _| x);
        assert!(none.is_empty());
        let zero_reps = run_matrix(&[1u32, 2], 0, 2, |&x, _| x);
        assert_eq!(zero_reps, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let params = vec![0u32, 1, 2];
        let _ = run_sweep(&params, 2, |&x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_reuse_across_many_generations() {
        // The MAC dispatches per slot: tens of thousands of tiny runs on
        // one pool. Totals must stay exact across generations.
        let mut pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for round in 0..5_000usize {
            let items = 1 + round % 7;
            pool.run(items, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        let expected: usize = (0..5_000).map(|r| (1..=(1 + r % 7)).sum::<usize>()).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn pool_zero_items_is_a_noop_and_drop_joins() {
        let mut pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("must not be called"));
        assert!(pool.workers() >= 1);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_item_panic_propagates_after_completion() {
        let mut pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "pool must surface the item panic");
        assert_eq!(done.load(Ordering::Relaxed), 7, "other items still complete");
        // Poisoning is per-run: a later, healthy generation must succeed.
        let ok = AtomicUsize::new(0);
        pool.run(5, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 5, "pool must stay usable after a panic");
    }
}
