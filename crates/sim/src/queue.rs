//! Deterministic pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`: events scheduled for the same
//! instant are delivered in the order they were scheduled (FIFO). This makes
//! whole simulations bit-for-bit reproducible for a fixed seed, which the
//! test-suite relies on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: payload `E` plus its delivery time and tie-break rank.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top, and among equal times the lowest sequence number.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future-event list with stable FIFO ordering for simultaneous events.
///
/// ```
/// use dirq_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime(5), "b");
/// q.push(SimTime(3), "a");
/// q.push(SimTime(5), "c");
/// assert_eq!(q.pop(), Some((SimTime(3), "a")));
/// assert_eq!(q.pop(), Some((SimTime(5), "b"))); // FIFO at equal time
/// assert_eq!(q.pop(), Some((SimTime(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Create an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedule `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Delivery time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discard all pending events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 3);
        q.push(SimTime(10), 1);
        q.push(SimTime(20), 2);
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((SimTime(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 'a');
        q.push(SimTime(1), 'b');
        assert_eq!(q.pop(), Some((SimTime(1), 'b')));
        q.push(SimTime(2), 'c');
        q.push(SimTime(5), 'd');
        assert_eq!(q.pop(), Some((SimTime(2), 'c')));
        assert_eq!(q.pop(), Some((SimTime(5), 'a')));
        assert_eq!(q.pop(), Some((SimTime(5), 'd')));
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), 1);
        q.push(SimTime(1), 2);
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime(1), 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop(), Some((SimTime(1), 3)));
    }

    proptest! {
        /// Popping everything yields a sequence sorted by (time, insertion).
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // stable by construction: (time, index)
            let mut got = Vec::new();
            while let Some((t, i)) = q.pop() {
                got.push((t.ticks(), i));
            }
            prop_assert_eq!(got, expected);
        }

        /// peek_time always agrees with the next pop.
        #[test]
        fn prop_peek_matches_pop(times in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime(t), ());
            }
            while let Some(peeked) = q.peek_time() {
                let (popped, ()) = q.pop().unwrap();
                prop_assert_eq!(peeked, popped);
            }
        }
    }
}
