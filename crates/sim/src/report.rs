//! Experiment output: CSV rows and aligned ASCII tables.
//!
//! The benchmark binaries regenerate the paper's figures as data series;
//! this module renders them without pulling in a serialisation stack.

use std::fmt::Write as _;

/// Builder for a rectangular table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (RFC-4180-style quoting for fields containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if field.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&field.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let rule = |out: &mut String| {
            for w in &widths {
                out.push('+');
                for _ in 0..w + 2 {
                    out.push('-');
                }
            }
            out.push_str("+\n");
        };
        let line = |out: &mut String, row: &[String]| {
            for i in 0..cols {
                let _ = write!(out, "| {:width$} ", row[i], width = widths[i]);
            }
            out.push_str("|\n");
        };
        rule(&mut out);
        line(&mut out, &self.header);
        rule(&mut out);
        for row in &self.rows {
            line(&mut out, row);
        }
        rule(&mut out);
        out
    }
}

/// Format a float with `prec` decimals (helper for table cells).
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a ratio as a percentage with `prec` decimals.
pub fn fpct(x: f64, prec: usize) -> String {
    format!("{:.prec$}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_simple() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(["x"]);
        t.row(["has,comma"]);
        t.row(["has\"quote"]);
        assert_eq!(t.to_csv(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    fn ascii_aligns_columns() {
        let mut t = Table::new(["name", "v"]);
        t.row(["long-name-here", "1"]);
        t.row(["s", "22"]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        // rule, header, rule, 2 rows, rule
        assert_eq!(lines.len(), 6);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn numeric_formatters() {
        assert_eq!(fnum(12.3456, 2), "12.35");
        assert_eq!(fpct(0.4567, 1), "45.7%");
    }
}
