//! Discrete simulation time.
//!
//! The paper measures everything in *epochs* (one sensor acquisition per
//! node per epoch, queries every 20 epochs, runs of 20 000 epochs). The MAC
//! layer operates at a finer granularity (TDMA slots). We therefore keep the
//! kernel clock in abstract *ticks* and let higher layers choose a
//! ticks-per-epoch / ticks-per-slot mapping.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in ticks since start.
///
/// `SimTime` is a transparent `u64` newtype: cheap to copy, totally ordered,
/// and overflow-checked in debug builds through the arithmetic impls below.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span between two [`SimTime`] instants, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration (never wraps past [`SimTime::MAX`]).
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Duration elapsed since `earlier`, or `None` when `earlier` is later
    /// than `self`.
    #[inline]
    pub const fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(d) => Some(SimDuration(d)),
            None => None,
        }
    }

    /// Index of the epoch containing this instant, for a given epoch length.
    ///
    /// # Panics
    /// Panics if `ticks_per_epoch` is zero.
    #[inline]
    pub const fn epoch(self, ticks_per_epoch: u64) -> u64 {
        assert!(ticks_per_epoch > 0, "epoch length must be positive");
        self.0 / ticks_per_epoch
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from a raw tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> SimDuration {
        SimDuration(t)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Scale the duration by an integer factor, saturating on overflow.
    #[inline]
    pub const fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime(10);
        let b = a + SimDuration(5);
        assert_eq!(b, SimTime(15));
        assert!(a < b);
        assert_eq!(b - a, SimDuration(5));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let t = SimTime::MAX.saturating_add(SimDuration(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn checked_since_orders() {
        assert_eq!(SimTime(5).checked_since(SimTime(2)), Some(SimDuration(3)));
        assert_eq!(SimTime(2).checked_since(SimTime(5)), None);
    }

    #[test]
    fn epoch_indexing() {
        assert_eq!(SimTime(0).epoch(20), 0);
        assert_eq!(SimTime(19).epoch(20), 0);
        assert_eq!(SimTime(20).epoch(20), 1);
        assert_eq!(SimTime(399).epoch(20), 19);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn epoch_zero_len_panics() {
        let _ = SimTime(1).epoch(0);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime(1);
        t += SimDuration(9);
        assert_eq!(t.ticks(), 10);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration(7).saturating_mul(3), SimDuration(21));
        assert_eq!(SimDuration(u64::MAX).saturating_mul(2), SimDuration(u64::MAX));
    }
}
