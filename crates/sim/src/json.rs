//! Minimal JSON tree: deterministic writer plus a strict parser.
//!
//! The bench binaries record machine-readable artifacts (`BENCH_n.json`)
//! and the scenario harness emits structured [`crate::report`]s; both need
//! JSON without pulling a serialisation stack into the workspace. Objects
//! preserve insertion order, so rendering is deterministic — important for
//! fingerprinted reports. The parser accepts exactly the subset the writer
//! produces (RFC 8259 minus exotic escapes), enough for round-trip checks
//! and for CI jobs that validate emitted artifacts.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered with up to 17 significant digits).
    Num(f64),
    /// An integer outside `f64`'s exact range (|value| > 2^53). The
    /// parser produces this variant only for such literals — smaller
    /// integers stay [`Json::Num`] — so `u64` seeds and ids survive the
    /// wire losslessly while ordinary documents round-trip unchanged.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/overwrite `key` in an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        let Json::Obj(fields) = self else { panic!("Json::set on a non-object") };
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number. [`Json::Int`] values are
    /// converted (lossy beyond 2^53 — use [`Json::as_u64`] when exactness
    /// matters).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(x) => Some(x),
            Json::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The exact non-negative integer value, if this holds one losslessly:
    /// an [`Json::Int`] in `u64` range, or a [`Json::Num`] that is
    /// integral and within `f64`'s exact range. Negative values,
    /// fractional values, and anything that would round return `None`.
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::Num(x) if x.fract() == 0.0 && (0.0..=EXACT).contains(&x) => Some(x as u64),
            _ => None,
        }
    }

    /// Wrap a `u64` so it round-trips exactly: values in `f64`'s exact
    /// range stay ordinary numbers, larger ones become [`Json::Int`].
    pub fn from_u64(v: u64) -> Json {
        if v <= (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Int(v as i128)
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d)
                })
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        Json::parse_bytes(text.as_bytes())
    }

    /// Parse a document from raw bytes (e.g. a wire-protocol line that has
    /// not been UTF-8-validated). Invalid or truncated UTF-8 inside
    /// strings is a [`ParseError`], never a panic, and nesting deeper than
    /// [`MAX_PARSE_DEPTH`] is rejected (bounding recursion on hostile
    /// input).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, ParseError> {
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError { pos, what: "trailing characters after document" });
        }
        Ok(value)
    }

    /// [`Json::parse_bytes`] with an input size cap, for line protocols
    /// where a peer controls the input: documents longer than `max_bytes`
    /// are rejected up front with a typed error.
    pub fn parse_bounded(bytes: &[u8], max_bytes: usize) -> Result<Json, ParseError> {
        if bytes.len() > max_bytes {
            return Err(ParseError { pos: max_bytes, what: "document exceeds size limit" });
        }
        Json::parse_bytes(bytes)
    }
}

/// Maximum container nesting depth [`Json::parse_bytes`] accepts. Real
/// artifacts nest a handful of levels; the cap exists so hostile input
/// (e.g. a megabyte of `[`) cannot overflow the parser's stack.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parse failure: byte offset plus a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional substitute.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Shortest representation that round-trips.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    what: &'static str,
) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { pos: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    if depth > MAX_PARSE_DEPTH {
        return Err(ParseError { pos: *pos, what: "nesting too deep" });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError { pos: *pos, what: "unexpected end of input" }),
        Some(b'n') => expect(bytes, pos, "null", "expected null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true", "expected true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false", "expected false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { pos: *pos, what: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError { pos: *pos, what: "expected ':' after object key" });
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError { pos: *pos, what: "expected ',' or '}'" }),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError { pos: *pos, what: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError { pos: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { pos: *pos, what: "bad \\u escape" })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our artifacts.
                        out.push(
                            char::from_u32(hex)
                                .ok_or(ParseError { pos: *pos, what: "bad \\u escape" })?,
                        );
                    }
                    _ => return Err(ParseError { pos: *pos, what: "unknown escape" }),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input may be raw wire
                // bytes, so both a truncated tail and an invalid sequence
                // must surface as errors rather than slicing out of range.
                let rest = &bytes[*pos..];
                let ch_len = match rest[0] {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                let scalar = rest
                    .get(..ch_len)
                    .ok_or(ParseError { pos: *pos, what: "truncated UTF-8 in string" })?;
                out.push_str(
                    std::str::from_utf8(scalar)
                        .map_err(|_| ParseError { pos: *pos, what: "invalid UTF-8 in string" })?,
                );
                *pos += ch_len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError { pos: start, what: "expected a value" })?;
    // Integer literals parse losslessly: beyond f64's exact range they
    // become `Json::Int` (u64 seeds/ids must not be rounded by the wire);
    // within it they stay `Json::Num` so writer output round-trips as-is.
    let digits = token.strip_prefix('-').unwrap_or(token);
    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = token.parse::<i128>() {
            return Ok(if v.unsigned_abs() > 1u128 << 53 {
                Json::Int(v)
            } else {
                Json::Num(v as f64)
            });
        }
    }
    token
        .parse::<f64>()
        .ok()
        .map(Json::Num)
        .ok_or(ParseError { pos: start, what: "expected a value" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scalar_values() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Str("a\"b".into()).render(), "\"a\\\"b\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::object();
        o.set("z", Json::Num(1.0)).set("a", Json::Num(2.0));
        assert_eq!(o.render(), "{\"z\":1,\"a\":2}");
        o.set("z", Json::Num(9.0));
        assert_eq!(o.render(), "{\"z\":9,\"a\":2}", "overwrite keeps position");
    }

    #[test]
    fn round_trip_nested_document() {
        let mut inner = Json::object();
        inner.set("name", Json::Str("dense_grid_100".into()));
        inner.set("delivery", Json::Num(0.973));
        let mut doc = Json::object();
        doc.set("schema", Json::Str("v1".into()));
        doc.set("rows", Json::Arr(vec![inner, Json::Null]));
        doc.set("ok", Json::Bool(false));
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"x\\ny\\u0041\" ] } ").unwrap();
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\nyA"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "truex", "{\"a\":1} trailing", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_bytes_rejects_truncated_and_invalid_utf8() {
        // A string cut off mid-way through a three-byte scalar ("€").
        let truncated = b"\"\xE2\x82";
        let err = Json::parse_bytes(truncated).unwrap_err();
        assert_eq!(err.what, "truncated UTF-8 in string");
        // A bare continuation byte inside a string.
        let invalid = b"\"\x80\"";
        let err = Json::parse_bytes(invalid).unwrap_err();
        assert_eq!(err.what, "invalid UTF-8 in string");
        // A complete document with a dangling multi-byte head at the end.
        let tail = b"\"abc\xF0";
        assert!(Json::parse_bytes(tail).is_err());
    }

    #[test]
    fn parse_rejects_truncated_escapes() {
        for bad in ["\"\\", "\"\\u", "\"\\u12", "\"\\u12G4\"", "\"\\q\"", "\"\\uD800\""] {
            assert!(Json::parse(bad).is_err(), "accepted malformed escape: {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_excessive_nesting() {
        let mut deep = String::new();
        for _ in 0..=MAX_PARSE_DEPTH + 1 {
            deep.push('[');
        }
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.what, "nesting too deep");
        // Depth at the limit still parses.
        let mut ok = String::new();
        for _ in 0..MAX_PARSE_DEPTH {
            ok.push('[');
        }
        for _ in 0..MAX_PARSE_DEPTH {
            ok.push(']');
        }
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_bounded_enforces_size_limit() {
        let doc = b"{\"a\":[1,2,3]}";
        assert!(Json::parse_bounded(doc, doc.len()).is_ok());
        let err = Json::parse_bounded(doc, doc.len() - 1).unwrap_err();
        assert_eq!(err.what, "document exceeds size limit");
    }

    #[test]
    fn large_integers_render_exactly() {
        let fp = 0x9736B37FDB35FBA2u64;
        // u64 fingerprints don't fit f64; they are rendered as hex strings
        // by convention. Check the convention helper-free path: the caller
        // formats, we just store strings.
        let j = Json::Str(format!("{fp:#018X}"));
        assert_eq!(j.render(), "\"0x9736B37FDB35FBA2\"");
    }

    #[test]
    fn big_integers_parse_and_render_losslessly() {
        // Above 2^53: must come back exact through parse → as_u64.
        for v in [u64::MAX, u64::MAX - 3, (1u64 << 53) + 1, 1 << 60] {
            let parsed = Json::parse(&v.to_string()).unwrap();
            assert_eq!(parsed, Json::Int(v as i128), "lossless variant for {v}");
            assert_eq!(parsed.as_u64(), Some(v));
            assert_eq!(parsed.render(), v.to_string(), "render round-trips {v}");
            assert_eq!(Json::from_u64(v), parsed, "writer helper matches the parser");
        }
        // At or below 2^53: stays a plain number, so writer-produced
        // documents round-trip with derived equality.
        for v in [0u64, 42, 1 << 53] {
            assert_eq!(Json::parse(&v.to_string()).unwrap(), Json::Num(v as f64));
            assert_eq!(Json::from_u64(v), Json::Num(v as f64));
        }
        // Negative and fractional values never masquerade as u64.
        assert_eq!(Json::parse("-9007199254740995").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        // Beyond i128 the literal degrades to f64 (and is not exact).
        assert!(matches!(Json::parse("1e300").unwrap(), Json::Num(_)));
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let j = Json::parse("{\"a\":1}").unwrap();
        assert!(j.get("missing").is_none());
        assert!(j.as_f64().is_none());
        assert!(j.get("a").unwrap().as_str().is_none());
    }
}
