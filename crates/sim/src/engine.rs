//! The event loop.
//!
//! A [`Simulator`] owns a user-provided [`Model`] and the pending-event set.
//! Each step pops the earliest event, advances the clock, and hands the
//! event to the model together with a [`Context`] through which the model
//! schedules follow-up events. This mirrors OMNeT++'s `handleMessage`
//! discipline, which is what the paper's original implementation used.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A simulation model: the owner of all protocol/world state.
///
/// The single required method reacts to one event; any events it schedules
/// through the [`Context`] are merged into the global future-event list.
pub trait Model {
    /// The event payload type processed by this model.
    type Event;

    /// Handle `event` occurring at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Scheduling handle passed to [`Model::handle`].
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// Current simulation time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — causality violations are always
    /// model bugs and must fail loudly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past (now={}, at={})",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now.saturating_add(delay);
        self.queue.push(at, event);
    }

    /// Request that the run loop stops after the current event.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Drives a [`Model`] through simulated time.
pub struct Simulator<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    stop_requested: bool,
}

impl<M: Model> Simulator<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulator::with_capacity(model, 0)
    }

    /// Like [`Simulator::new`], pre-sizing the pending-event set for
    /// `capacity` events. Models with a known steady-state event population
    /// (e.g. one timer per node of a topology) avoid every queue regrowth
    /// by passing it here.
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Simulator {
            model,
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
            stop_requested: false,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for out-of-band inspection/injection
    /// between runs; do not mutate scheduling state mid-run).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedule an event from outside the model (initial conditions,
    /// injected workload, fault injection, …).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past (now={}, at={})",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Process a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.processed += 1;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut self.stop_requested,
        };
        self.model.handle(&mut ctx, ev);
        true
    }

    /// Run until the queue drains, `horizon` is passed, or the model calls
    /// [`Context::stop`]. Events stamped exactly at `horizon` are processed.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.processed;
        while !self.stop_requested {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        // Even if stopped early, the clock never runs backwards; snap the
        // clock to the horizon so repeated run_until calls compose.
        if self.now < horizon && !self.stop_requested {
            self.now = horizon;
        }
        self.processed - before
    }

    /// Run until the event queue is completely drained (or `stop()`).
    /// Returns the number of events processed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let before = self.processed;
        while !self.stop_requested && self.step() {}
        self.processed - before
    }

    /// Whether a model requested an early stop.
    pub fn stopped(&self) -> bool {
        self.stop_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events and re-schedules `remaining` follow-ups, one tick apart.
    struct Chain {
        fired_at: Vec<u64>,
        remaining: u32,
        stop_at: Option<u64>,
    }

    impl Model for Chain {
        type Event = ();

        fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
            self.fired_at.push(ctx.now().ticks());
            if let Some(s) = self.stop_at {
                if ctx.now().ticks() >= s {
                    ctx.stop();
                    return;
                }
            }
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(SimDuration(1), ());
            }
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut sim =
            Simulator::with_capacity(Chain { fired_at: vec![], remaining: 2, stop_at: None }, 128);
        sim.schedule_at(SimTime(1), ());
        assert_eq!(sim.run_to_completion(), 3);
        assert_eq!(sim.model().fired_at, vec![1, 2, 3]);
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut sim = Simulator::new(Chain { fired_at: vec![], remaining: 4, stop_at: None });
        sim.schedule_at(SimTime(10), ());
        let n = sim.run_to_completion();
        assert_eq!(n, 5);
        assert_eq!(sim.model().fired_at, vec![10, 11, 12, 13, 14]);
        assert_eq!(sim.now(), SimTime(14));
    }

    #[test]
    fn run_until_is_inclusive_and_composable() {
        let mut sim = Simulator::new(Chain { fired_at: vec![], remaining: 100, stop_at: None });
        sim.schedule_at(SimTime(0), ());
        let n1 = sim.run_until(SimTime(10));
        assert_eq!(n1, 11); // events at t = 0..=10
        assert_eq!(sim.now(), SimTime(10));
        let n2 = sim.run_until(SimTime(20));
        assert_eq!(n2, 10); // events at t = 11..=20
        assert_eq!(sim.model().fired_at.len(), 21);
    }

    #[test]
    fn run_until_with_empty_queue_snaps_clock() {
        let mut sim = Simulator::new(Chain { fired_at: vec![], remaining: 0, stop_at: None });
        assert_eq!(sim.run_until(SimTime(50)), 0);
        assert_eq!(sim.now(), SimTime(50));
    }

    #[test]
    fn stop_terminates_early() {
        let mut sim = Simulator::new(Chain { fired_at: vec![], remaining: 1000, stop_at: Some(5) });
        sim.schedule_at(SimTime(0), ());
        sim.run_to_completion();
        assert!(sim.stopped());
        assert_eq!(sim.model().fired_at, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "schedule an event in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                ctx.schedule_at(SimTime(0), ());
            }
        }
        let mut sim = Simulator::new(Bad);
        sim.schedule_at(SimTime(10), ());
        sim.run_to_completion();
    }

    #[test]
    fn external_injection_between_phases() {
        let mut sim = Simulator::new(Chain { fired_at: vec![], remaining: 0, stop_at: None });
        sim.schedule_at(SimTime(1), ());
        sim.run_until(SimTime(5));
        sim.schedule_at(SimTime(7), ());
        sim.run_until(SimTime(10));
        assert_eq!(sim.model().fired_at, vec![1, 7]);
        assert_eq!(sim.processed(), 2);
    }
}
