//! Saturating event counter.

/// A monotone event counter with snapshot/delta support.
///
/// Used for transmission/reception tallies, per-query message counts, etc.
/// Saturates instead of wrapping: simulation statistics must never alias
/// small values after overflow.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
    last_snapshot: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Amount accumulated since the previous call to `take_delta` (or since
    /// creation), and mark a new snapshot. The backbone of Fig. 6's
    /// "updates per 100 epochs" bucketing.
    pub fn take_delta(&mut self) -> u64 {
        let d = self.value - self.last_snapshot;
        self.last_snapshot = self.value;
        d
    }

    /// Value accumulated since the last snapshot without resetting.
    pub fn peek_delta(&self) -> u64 {
        self.value - self.last_snapshot
    }

    /// Reset the counter and its snapshot to zero.
    pub fn reset(&mut self) {
        self.value = 0;
        self.last_snapshot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_snapshots() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.peek_delta(), 5);
        assert_eq!(c.take_delta(), 5);
        assert_eq!(c.peek_delta(), 0);
        c.add(3);
        assert_eq!(c.take_delta(), 3);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn saturates_at_max() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Counter::new();
        c.add(7);
        c.take_delta();
        c.add(2);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.take_delta(), 0);
    }
}
