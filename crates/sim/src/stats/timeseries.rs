//! Bucketed time-series accumulation.
//!
//! Fig. 6 of the paper plots "total number of update messages transmitted
//! every 100 epochs" over a 20 000-epoch run; [`TimeSeries`] is exactly that
//! data structure: values are accumulated into fixed-width time buckets.

use crate::time::SimTime;

/// Accumulates `f64` contributions into fixed-width time buckets.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket_width: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Create a series whose buckets span `bucket_width` ticks each.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: u64) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        TimeSeries { bucket_width, sums: Vec::new(), counts: Vec::new() }
    }

    /// Bucket width in ticks.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Add `value` to the bucket containing `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.ticks() / self.bucket_width) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Convenience: add 1.0 to the bucket containing `t` (event counting).
    pub fn record_event(&mut self, t: SimTime) {
        self.record(t, 1.0);
    }

    /// Number of materialised buckets (trailing empty buckets may be absent).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Sum accumulated in bucket `idx` (0.0 for out-of-range buckets).
    pub fn sum(&self, idx: usize) -> f64 {
        self.sums.get(idx).copied().unwrap_or(0.0)
    }

    /// Number of contributions in bucket `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Mean contribution in bucket `idx`, or `None` if the bucket is empty.
    pub fn mean(&self, idx: usize) -> Option<f64> {
        let c = self.count(idx);
        (c > 0).then(|| self.sum(idx) / c as f64)
    }

    /// Iterator over `(bucket_start_tick, sum)` pairs, padded so every
    /// bucket up to the last materialised one appears.
    pub fn iter_sums(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sums.iter().enumerate().map(move |(i, &s)| (i as u64 * self.bucket_width, s))
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Write the full series state to `w`.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.bucket_width);
        w.f64s(&self.sums);
        w.u64s(&self.counts);
    }

    /// Rebuild from a [`TimeSeries::snap`] record.
    pub fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let pos = r.position();
        let bucket_width = r.u64()?;
        if bucket_width == 0 {
            return Err(crate::snap::SnapError::Malformed { pos, what: "zero bucket width" });
        }
        let sums = r.f64s()?;
        let counts = r.u64s()?;
        if sums.len() != counts.len() {
            return Err(crate::snap::SnapError::Malformed {
                pos,
                what: "sum/count bucket mismatch",
            });
        }
        Ok(TimeSeries { bucket_width, sums, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fall_into_expected_buckets() {
        let mut ts = TimeSeries::new(100);
        ts.record_event(SimTime(0));
        ts.record_event(SimTime(99));
        ts.record_event(SimTime(100));
        ts.record_event(SimTime(250));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.sum(0), 2.0);
        assert_eq!(ts.sum(1), 1.0);
        assert_eq!(ts.sum(2), 1.0);
        assert_eq!(ts.total(), 4.0);
    }

    #[test]
    fn values_accumulate_and_average() {
        let mut ts = TimeSeries::new(10);
        ts.record(SimTime(5), 2.0);
        ts.record(SimTime(7), 4.0);
        assert_eq!(ts.sum(0), 6.0);
        assert_eq!(ts.count(0), 2);
        assert_eq!(ts.mean(0), Some(3.0));
        assert_eq!(ts.mean(1), None);
    }

    #[test]
    fn sparse_recording_pads_intermediate_buckets() {
        let mut ts = TimeSeries::new(10);
        ts.record_event(SimTime(95));
        assert_eq!(ts.len(), 10);
        for i in 0..9 {
            assert_eq!(ts.sum(i), 0.0);
        }
        assert_eq!(ts.sum(9), 1.0);
        let pairs: Vec<(u64, f64)> = ts.iter_sums().collect();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[9], (90, 1.0));
    }

    #[test]
    fn out_of_range_queries_are_zero() {
        let ts = TimeSeries::new(10);
        assert!(ts.is_empty());
        assert_eq!(ts.sum(3), 0.0);
        assert_eq!(ts.count(3), 0);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_rejected() {
        let _ = TimeSeries::new(0);
    }
}
