//! Fixed-width binned histogram with quantile queries.

/// A histogram over `[lo, hi)` with equally sized bins plus under/overflow.
///
/// Used for distributions of per-query costs and overshoot. Quantiles are
/// answered by linear interpolation inside the owning bin, which is accurate
/// enough for reporting percentile bands.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty ({lo} >= {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            // Floating point can land exactly on bins.len() when x is just
            // below hi; clamp defensively.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) by in-bin interpolation.
    /// Returns `None` for an empty histogram. Underflow mass is treated as
    /// sitting at `lo` and overflow mass at `hi`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.lo);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return Some(self.lo + (i as f64 + frac) * self.bin_width());
            }
            acc = next;
        }
        Some(self.hi)
    }

    /// Mean of the recorded distribution using bin midpoints (under/overflow
    /// contribute `lo`/`hi` respectively).
    pub fn approx_mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let w = self.bin_width();
        let mut sum = self.underflow as f64 * self.lo + self.overflow as f64 * self.hi;
        for (i, &c) in self.bins.iter().enumerate() {
            sum += c as f64 * (self.lo + (i as f64 + 0.5) * w);
        }
        Some(sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.observe(0.0);
        h.observe(0.99);
        h.observe(5.0);
        h.observe(9.999);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.observe(-5.0);
        h.observe(1.0); // hi is exclusive
        h.observe(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_of_uniform_grid() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.observe(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.approx_mean(), None);
    }

    #[test]
    fn approx_mean_of_point_mass() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..50 {
            h.observe(3.2); // bin 3, midpoint 3.5
        }
        assert!((h.approx_mean().unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "histogram range must be non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
