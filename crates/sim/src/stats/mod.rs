//! Measurement toolkit for simulation experiments.
//!
//! Everything the reproduction reports — message counts, cost ratios,
//! overshoot percentages, update-rate time series — flows through these
//! primitives:
//!
//! * [`Counter`] — saturating event counter with snapshot/delta support.
//! * [`Ewma`] — exponentially weighted moving average (ATC's estimate of
//!   local signal variability and of a node's own update rate).
//! * [`Welford`] — numerically stable running mean/variance.
//! * [`Histogram`] — fixed-width binning with quantile queries.
//! * [`TimeSeries`] — per-bucket accumulation (the paper's
//!   "updates per 100 epochs" curves in Fig. 6).

mod counter;
mod ewma;
mod histogram;
mod timeseries;
mod welford;

pub use counter::Counter;
pub use ewma::Ewma;
pub use histogram::Histogram;
pub use timeseries::TimeSeries;
pub use welford::Welford;
