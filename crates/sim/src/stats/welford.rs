//! Numerically stable running mean and variance (Welford's algorithm).

/// Streaming mean/variance/min/max accumulator.
///
/// Used to summarise per-query overshoot (the paper's headline "average
/// overshoot of 3.6 %") without storing every sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Write the full accumulator state to `w`.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    /// Rebuild from a [`Welford::snap`] record.
    pub fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Welford { n: r.u64()?, mean: r.f64()?, m2: r.f64()?, min: r.f64()?, max: r.f64()? })
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_is_neutral() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.observe(x);
        }
        let (mean, var) = naive(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.observe(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    proptest! {
        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            a in proptest::collection::vec(-1e3f64..1e3, 1..50),
            b in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let mut wa = Welford::new();
            for &x in &a { wa.observe(x); }
            let mut wb = Welford::new();
            for &x in &b { wb.observe(x); }
            wa.merge(&wb);

            let mut wc = Welford::new();
            for &x in a.iter().chain(&b) { wc.observe(x); }

            prop_assert!((wa.mean() - wc.mean()).abs() < 1e-9);
            prop_assert!((wa.variance() - wc.variance()).abs() < 1e-6);
            prop_assert_eq!(wa.count(), wc.count());
        }

        /// Variance is never negative and mean stays within [min, max].
        #[test]
        fn prop_basic_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut w = Welford::new();
            for &x in &xs { w.observe(x); }
            prop_assert!(w.variance() >= 0.0);
            prop_assert!(w.mean() >= w.min().unwrap() - 1e-9);
            prop_assert!(w.mean() <= w.max().unwrap() + 1e-9);
        }
    }
}
