//! Exponentially weighted moving average.

use crate::snap::{SnapError, SnapReader, SnapWriter};

/// EWMA with smoothing factor `alpha` ∈ (0, 1].
///
/// The ATC controller uses EWMAs for two locally observable signals the
/// paper names as its inputs: the node's recent update-transmission rate and
/// the rate of change of the measured physical parameter.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        Ewma { alpha, value: None }
    }

    /// Create an EWMA whose weight halves every `n` observations.
    pub fn with_half_life(n: f64) -> Self {
        assert!(n > 0.0, "half-life must be positive");
        Ewma::new(1.0 - 0.5f64.powf(1.0 / n))
    }

    /// Feed one observation; the first observation initialises the average.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current estimate, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Write the full state (smoothing factor and estimate) to `w`.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.alpha);
        w.opt_f64(self.value);
    }

    /// Rebuild from a [`Ewma::snap`] record.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let alpha = r.f64()?;
        let value = r.opt_f64()?;
        Ok(Ewma { alpha, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initialises() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        e.observe(5.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        e.observe(0.0);
        for _ in 0..200 {
            e.observe(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_step_change_geometrically() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        e.observe(8.0); // 0 + 0.5*8 = 4
        assert_eq!(e.value(), Some(4.0));
        e.observe(8.0); // 4 + 0.5*4 = 6
        assert_eq!(e.value(), Some(6.0));
    }

    #[test]
    fn half_life_semantics() {
        // After `n` observations of 0 starting from 1, the value should be
        // 0.5 for half-life n.
        let n = 10.0;
        let mut e = Ewma::with_half_life(n);
        e.observe(1.0);
        for _ in 0..10 {
            e.observe(0.0);
        }
        assert!((e.value().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.3);
        e.observe(2.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(9.0), 9.0);
    }
}
