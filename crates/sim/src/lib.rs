//! # dirq-sim — discrete-event simulation kernel
//!
//! The DirQ paper evaluates its protocol inside OMNeT++, a discrete-event
//! simulator. There is no comparable WSN simulation ecosystem in Rust, so
//! this crate provides the substrate from scratch:
//!
//! * [`time`] — a discrete simulation clock ([`SimTime`], [`SimDuration`]).
//! * [`queue`] — a deterministic pending-event set with stable FIFO
//!   tie-breaking for simultaneous events.
//! * [`engine`] — the event loop: a [`Simulator`] drives a user [`Model`],
//!   which schedules future events through a [`Context`].
//! * [`rng`] — reproducible hierarchical random-number streams so that every
//!   component (radio, data generator, workload, …) draws from an
//!   independent, seed-derived stream.
//! * [`stats`] — counters, EWMAs, Welford accumulators, histograms and
//!   bucketed time series used by the measurement harness.
//! * [`runner`] — a parallel parameter-sweep/matrix executor (one
//!   simulation per thread, deterministic output ordering, seed
//!   replication).
//! * [`report`] — tiny CSV/ASCII-table emitters for experiment output.
//! * [`json`] — a deterministic JSON writer/parser for bench artifacts,
//!   scenario reports and the daemon wire protocol.
//! * [`snap`] — the versioned binary snapshot codec behind engine
//!   checkpoint/restore (and the on-disk image framing).
//! * [`fingerprint`] — the FNV-1a hasher behind every determinism golden.
//!
//! The kernel is deliberately minimal: single-threaded event processing per
//! simulation instance (simulations themselves are embarrassingly parallel
//! across parameter points), no virtual dispatch in the hot loop, and an
//! allocation-free scheduling fast path.

#![warn(missing_docs)]

pub mod engine;
pub mod fingerprint;
pub mod json;
pub mod queue;
pub mod report;
pub mod rng;
pub mod runner;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Context, Model, Simulator};
pub use fingerprint::Fnv;
pub use json::Json;
pub use queue::EventQueue;
pub use rng::{split_key, RngFactory, SimRng, StreamRng};
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
