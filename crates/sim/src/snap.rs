//! Versioned binary state snapshots.
//!
//! The daemon (`dirqd`) checkpoints a live engine so a deployment can be
//! restored bit-identically after a restart: run N epochs, snapshot,
//! restore, run M more must fingerprint equal to a straight N+M run. The
//! codec here is deliberately dumb — little-endian fixed-width fields,
//! length-prefixed sequences, four-byte ASCII section tags — so every
//! layer (core, data, lmac, net) can stream its private state through the
//! same [`SnapWriter`]/[`SnapReader`] pair without a serialisation stack.
//!
//! An on-disk *image* wraps one snapshot body with a magic, the format
//! version and a JSON header describing what was captured (preset, scheme,
//! seed, epoch), so tooling can inspect images without decoding the body;
//! see [`frame_image`]/[`parse_image`].
//!
//! Decoding is total: malformed input yields a typed [`SnapError`], never
//! a panic. Section tags make layout drift fail loudly at the boundary
//! where reader and writer disagree instead of megabytes later.

use crate::json::Json;
use crate::rng::SimRng;

/// Version of the snapshot body layout. Bump on any change to what the
/// engine layers write; restore refuses images recorded under a different
/// version (the golden image pin catches accidental drift).
pub const SNAP_FORMAT_VERSION: u32 = 1;

/// Magic prefix of an image file.
pub const IMAGE_MAGIC: &[u8; 8] = b"DIRQSNAP";

/// A snapshot decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a field could be read.
    Truncated {
        /// Byte offset where the read started.
        pos: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// A section tag did not match the expected one.
    BadTag {
        /// Byte offset of the tag.
        pos: usize,
        /// Tag the reader expected.
        expected: [u8; 4],
        /// Tag actually present.
        found: [u8; 4],
    },
    /// The image magic was wrong (not a snapshot file).
    BadMagic,
    /// The image was recorded under an incompatible format version.
    BadVersion {
        /// Version in the image.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// A structurally valid field carried an impossible value.
    Malformed {
        /// Byte offset of the offending field.
        pos: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Decoding finished but input bytes remain.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        pos: usize,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { pos, needed } => {
                write!(f, "snapshot truncated at byte {pos} (needed {needed} more)")
            }
            SnapError::BadTag { pos, expected, found } => write!(
                f,
                "snapshot section mismatch at byte {pos}: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            SnapError::BadMagic => write!(f, "not a snapshot image (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot format version {found} (this build reads {expected})")
            }
            SnapError::Malformed { pos, what } => {
                write!(f, "malformed snapshot at byte {pos}: {what}")
            }
            SnapError::TrailingBytes { pos } => {
                write!(f, "trailing bytes after snapshot body (offset {pos})")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for one snapshot body.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded body.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// A four-byte ASCII section tag (layout-drift tripwire).
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    /// One `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// One `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One `usize`, widened to `u64`.
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// One `f64` by bit pattern (bit-identical restore, NaNs included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// One `bool` as a byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// An `Option<f64>`: presence byte plus the value when present.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        self.bool(v.is_some());
        if let Some(x) = v {
            self.f64(x);
        }
    }

    /// An `Option<u64>`: presence byte plus the value when present.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        self.bool(v.is_some());
        if let Some(x) = v {
            self.u64(x);
        }
    }

    /// An `Option<u16>`: presence byte plus the value when present.
    pub fn opt_u16(&mut self, v: Option<u16>) {
        self.bool(v.is_some());
        if let Some(x) = v {
            self.u16(x);
        }
    }

    /// A length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len_of(v.len());
        self.buf.extend_from_slice(v);
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// A length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.len_of(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// A length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.len_of(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// A length-prefixed `bool` slice (one byte per element).
    pub fn bools(&mut self, v: &[bool]) {
        self.len_of(v.len());
        for &x in v {
            self.bool(x);
        }
    }

    /// A generator's raw state (resumes the stream exactly on restore).
    pub fn rng(&mut self, rng: &SimRng) {
        for word in rng.state() {
            self.u64(word);
        }
    }
}

/// Cursor-based decoder over one snapshot body.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated { pos: self.pos, needed: n })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Expect a section tag written by [`SnapWriter::tag`].
    pub fn tag(&mut self, expected: &[u8; 4]) -> Result<(), SnapError> {
        let pos = self.pos;
        let got = self.take(4)?;
        if got != expected {
            let mut found = [0u8; 4];
            found.copy_from_slice(got);
            return Err(SnapError::BadTag { pos, expected: *expected, found });
        }
        Ok(())
    }

    /// One `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// One `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// One `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// One `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// One `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A sequence length; rejects lengths the remaining input cannot hold
    /// (`min_elem_bytes` is the smallest possible encoding of one element,
    /// making absurd lengths fail fast instead of attempting a huge
    /// allocation).
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let pos = self.pos;
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes.max(1) as u64) > remaining {
            return Err(SnapError::Malformed { pos, what: "sequence length exceeds input" });
        }
        Ok(n as usize)
    }

    /// One `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// One `bool`; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        let pos = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed { pos, what: "bool byte not 0/1" }),
        }
    }

    /// An `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapError> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// An `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// An `Option<u16>`.
    pub fn opt_u16(&mut self) -> Result<Option<u16>, SnapError> {
        Ok(if self.bool()? { Some(self.u16()?) } else { None })
    }

    /// A length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.seq_len(1)?;
        self.take(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        let pos = self.pos;
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapError::Malformed { pos, what: "invalid UTF-8 in string" })
    }

    /// A length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// A length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// A length-prefixed `bool` vector.
    pub fn bools(&mut self) -> Result<Vec<bool>, SnapError> {
        let n = self.seq_len(1)?;
        (0..n).map(|_| self.bool()).collect()
    }

    /// A generator captured by [`SnapWriter::rng`].
    pub fn rng(&mut self) -> Result<SimRng, SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = self.u64()?;
        }
        Ok(SimRng::from_state(s))
    }

    /// Assert the whole input was consumed.
    pub fn expect_eof(&self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes { pos: self.pos })
        }
    }
}

/// Frame a snapshot `body` into an on-disk image: magic, format version,
/// length-prefixed JSON `header`, length-prefixed body.
pub fn frame_image(header: &Json, body: &[u8]) -> Vec<u8> {
    let header_text = header.render();
    let mut out = Vec::with_capacity(8 + 4 + 8 + header_text.len() + 8 + body.len());
    out.extend_from_slice(IMAGE_MAGIC);
    out.extend_from_slice(&SNAP_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(header_text.len() as u64).to_le_bytes());
    out.extend_from_slice(header_text.as_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Structurally validate an image and return just its header: magic,
/// version, header JSON and framing lengths are checked (so a torn or
/// truncated write is detected), but the body is not decoded — deep
/// validation happens at engine restore. This is what the daemon's
/// crash-recovery scan uses to rank rotating checkpoint slots without
/// rebuilding an engine per candidate.
pub fn check_image(bytes: &[u8]) -> Result<Json, SnapError> {
    parse_image(bytes).map(|(header, _)| header)
}

/// Split an image back into its JSON header and snapshot body. Verifies
/// magic, version and framing; the body itself is decoded by the engine.
pub fn parse_image(bytes: &[u8]) -> Result<(Json, &[u8]), SnapError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take(8).map_err(|_| SnapError::BadMagic)?;
    if magic != IMAGE_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != SNAP_FORMAT_VERSION {
        return Err(SnapError::BadVersion { found: version, expected: SNAP_FORMAT_VERSION });
    }
    let header_pos = r.position();
    let header_bytes = r.bytes()?;
    let header_text = std::str::from_utf8(header_bytes)
        .map_err(|_| SnapError::Malformed { pos: header_pos, what: "header is not UTF-8" })?;
    let header = Json::parse(header_text)
        .map_err(|_| SnapError::Malformed { pos: header_pos, what: "header is not valid JSON" })?;
    let body = r.bytes()?;
    r.expect_eof()?;
    Ok((header, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = SnapWriter::new();
        w.tag(b"TEST");
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.u128(u128::MAX - 5);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.bool(true);
        w.opt_f64(None);
        w.opt_u16(Some(96));
        w.str("dirq");
        w.f64s(&[1.0, 2.5]);
        w.u64s(&[3, 4, 5]);
        w.bools(&[true, false]);
        let body = w.finish();

        let mut r = SnapReader::new(&body);
        r.tag(b"TEST").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_u16().unwrap(), Some(96));
        assert_eq!(r.str().unwrap(), "dirq");
        assert_eq!(r.f64s().unwrap(), vec![1.0, 2.5]);
        assert_eq!(r.u64s().unwrap(), vec![3, 4, 5]);
        assert_eq!(r.bools().unwrap(), vec![true, false]);
        r.expect_eof().unwrap();
    }

    #[test]
    fn typed_errors_not_panics() {
        // Truncation mid-field.
        let mut w = SnapWriter::new();
        w.u64(42);
        let body = w.finish();
        let mut r = SnapReader::new(&body[..5]);
        assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));

        // Wrong section tag.
        let mut w = SnapWriter::new();
        w.tag(b"AAAA");
        let body = w.finish();
        let mut r = SnapReader::new(&body);
        assert!(matches!(r.tag(b"BBBB"), Err(SnapError::BadTag { .. })));

        // Absurd sequence length fails before allocating.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let body = w.finish();
        let mut r = SnapReader::new(&body);
        assert!(matches!(r.f64s(), Err(SnapError::Malformed { .. })));

        // Non-boolean byte.
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(r.bool(), Err(SnapError::Malformed { .. })));

        // Trailing garbage.
        let r = SnapReader::new(&[0]);
        assert!(matches!(r.expect_eof(), Err(SnapError::TrailingBytes { .. })));
    }

    #[test]
    fn image_framing_round_trip() {
        let mut header = Json::object();
        header.set("preset", Json::Str("smoke".into()));
        header.set("epoch", Json::Num(17.0));
        let body = vec![1u8, 2, 3, 4];
        let image = frame_image(&header, &body);
        let (h, b) = parse_image(&image).unwrap();
        assert_eq!(h.get("preset").and_then(Json::as_str), Some("smoke"));
        assert_eq!(h.get("epoch").and_then(Json::as_f64), Some(17.0));
        assert_eq!(b, &body[..]);
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        // A kill -9 mid-checkpoint leaves an arbitrary prefix of a valid
        // image on disk; the recovery scan must classify every one of
        // them as unusable without panicking.
        let mut header = Json::object();
        header.set("preset", Json::Str("dense_grid_100".into()));
        header.set("epoch", Json::Num(20.0));
        let body: Vec<u8> = (0..64u8).collect();
        let image = frame_image(&header, &body);
        for cut in 0..image.len() {
            assert!(
                check_image(&image[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte image must not validate",
                image.len()
            );
        }
        assert!(check_image(&image).is_ok());
        // Trailing garbage (a torn overwrite of a longer older image) is
        // rejected too.
        let mut padded = image.clone();
        padded.extend_from_slice(b"stale tail");
        assert!(matches!(check_image(&padded), Err(SnapError::TrailingBytes { .. })));
    }

    #[test]
    fn image_rejects_bad_magic_and_version() {
        let image = frame_image(&Json::object(), &[]);
        let mut wrong_magic = image.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(parse_image(&wrong_magic), Err(SnapError::BadMagic));

        let mut wrong_version = image.clone();
        wrong_version[8] = 99;
        assert!(matches!(parse_image(&wrong_version), Err(SnapError::BadVersion { .. })));

        // Truncated image.
        assert!(parse_image(&image[..image.len() - 1]).is_err());
        assert_eq!(parse_image(b"nope"), Err(SnapError::BadMagic));
    }
}
