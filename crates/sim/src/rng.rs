//! Reproducible hierarchical random-number streams.
//!
//! Every stochastic component of the simulation (radio placement, sensor
//! field, workload generator, per-node jitter, …) gets its **own** stream
//! derived from a single master seed and a stable stream label. This keeps
//! runs reproducible *and* insulated: adding draws to one component never
//! perturbs another component's sequence, so experiments stay comparable
//! across code changes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The concrete RNG used throughout the workspace.
///
/// `SmallRng` (xoshiro-family) is fast and plenty for simulation; nothing
/// here is cryptographic.
pub type SimRng = SmallRng;

/// SplitMix64 step — used only for seed derivation, never for simulation
/// draws. Standard constants from Steele et al., "Fast Splittable
/// Pseudorandom Number Generators".
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a label into a seed so that distinct labels yield decorrelated
/// streams even for adjacent master seeds.
fn derive(master: u64, label: &str, index: u64) -> [u8; 32] {
    // FNV-1a over the label gives a stable 64-bit label hash without
    // depending on std's randomized hasher.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut state = master ^ h.rotate_left(17) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut out = [0u8; 32];
    for chunk in out.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out
}

/// Factory for named, index-addressed random streams.
///
/// ```
/// use dirq_sim::RngFactory;
/// use rand::Rng;
/// let f = RngFactory::new(42);
/// let mut radio = f.stream("radio");
/// let mut node7 = f.indexed_stream("node", 7);
/// // Streams are independent and reproducible:
/// let a: u64 = radio.gen();
/// let b: u64 = f.stream("radio").gen();
/// assert_eq!(a, b);
/// let c: u64 = node7.gen();
/// assert_ne!(a, c);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Create a factory for `master` seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// A stream identified by a label only.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::from_seed(derive(self.master, label, 0))
    }

    /// A stream identified by a label and an index (e.g. per-node streams).
    pub fn indexed_stream(&self, label: &str, index: u64) -> SimRng {
        SimRng::from_seed(derive(self.master, label, index.wrapping_add(1)))
    }

    /// A 64-bit key for a [`StreamRng`] family, derived like the seeded
    /// streams: stable in the master seed, the label and the index.
    /// Per-element keys are then split off with [`split_key`].
    pub fn stream_key(&self, label: &str, index: u64) -> u64 {
        let bytes = derive(self.master, label, index.wrapping_add(1));
        let mut k = [0u8; 8];
        k.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(k)
    }

    /// Derive a sub-factory, e.g. one per replication of an experiment.
    pub fn subfactory(&self, label: &str, index: u64) -> RngFactory {
        let mut s = self.master ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
        let _ = splitmix64(&mut s);
        let bytes = derive(self.master, label, index);
        let mut m = [0u8; 8];
        m.copy_from_slice(&bytes[..8]);
        RngFactory { master: u64::from_le_bytes(m) ^ s }
    }
}

/// A splittable, counter-based random stream.
///
/// Output `i` of a stream is a **pure function** of `(key, i)` — a
/// splitmix64-style finalizer over the key plus a Weyl-sequenced counter —
/// so a stream can be created (or repositioned) in O(1) with no seeding
/// or warm-up cost. That is the property the parallel world generator is
/// built on: every `(node, type)` pair owns its own key, each epoch jumps
/// its stream to a fixed counter offset, and the draws are byte-identical
/// no matter which thread (or in which order) they happen.
///
/// Keys come from [`RngFactory::stream_key`] and are split per element
/// with [`split_key`]; both derivations finish with a full 64-bit mix, so
/// adjacent indices yield decorrelated streams. Statistical quality is
/// that of splitmix64 — more than adequate for simulation noise, not for
/// cryptography.
#[derive(Clone, Copy, Debug)]
pub struct StreamRng {
    key: u64,
    ctr: u64,
}

impl StreamRng {
    /// Stream for `key`, positioned at counter 0.
    #[inline]
    pub fn new(key: u64) -> Self {
        StreamRng { key, ctr: 0 }
    }

    /// Stream for `key` positioned at absolute counter `ctr` — O(1)
    /// random access into the stream (e.g. a fixed draw budget per epoch).
    #[inline]
    pub fn at(key: u64, ctr: u64) -> Self {
        StreamRng { key, ctr }
    }

    /// The current counter position (draws consumed since counter 0).
    #[inline]
    pub fn position(&self) -> u64 {
        self.ctr
    }
}

impl rand::RngCore for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // splitmix64 finalizer over key ⊕ Weyl(counter): equivalent to
        // splitmix64 seeded at `key` and jumped to position `ctr`.
        let mut z = self.key.wrapping_add(self.ctr.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.ctr = self.ctr.wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Split a stream key per element: mix `index` into `key` with a full
/// avalanche so `split_key(k, i)` and `split_key(k, i + 1)` are
/// decorrelated. Composable (`split_key(split_key(k, a), b)`) for
/// multi-axis stream families like `(type, node)`.
#[inline]
pub fn split_key(key: u64, index: u64) -> u64 {
    let mut s = key ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    splitmix64(&mut s)
}

/// Draw from a normal distribution via the Box–Muller transform.
///
/// `rand` 0.8 without `rand_distr` has no Gaussian sampler; this is the
/// standard polar-free form, adequate for synthetic sensor noise.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    // Guard u1 away from 0 so ln() is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
}

/// Draw **two independent** standard-normal values from one Box–Muller
/// transform (the cosine and sine halves), spending one `ln`, one `sqrt`
/// and one `sin_cos` for the pair — half the transcendental cost of two
/// [`sample_normal`] calls. Consumes exactly 2 `u64` draws. The world
/// generator pairs a cell's AR(1) innovation with its measurement noise.
pub fn sample_std_normal_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
    (r * cos, r * sin)
}

/// Sample an exponentially distributed value with the given `rate` (λ).
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labels_reproduce() {
        let f = RngFactory::new(123);
        let a: Vec<u32> = (0..16).map(|_| f.stream("x").gen::<u32>()).collect();
        let b: Vec<u32> = (0..16).map(|_| f.stream("x").gen::<u32>()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_decorrelate() {
        let f = RngFactory::new(123);
        let a: u64 = f.stream("alpha").gen();
        let b: u64 = f.stream("beta").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_decorrelate() {
        let f = RngFactory::new(9);
        let vals: Vec<u64> = (0..64).map(|i| f.indexed_stream("node", i).gen()).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len(), "per-index streams must differ");
    }

    #[test]
    fn adjacent_master_seeds_decorrelate() {
        let a: u64 = RngFactory::new(1000).stream("s").gen();
        let b: u64 = RngFactory::new(1001).stream("s").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn subfactory_differs_from_parent() {
        let f = RngFactory::new(77);
        let sub = f.subfactory("rep", 0);
        assert_ne!(f.master_seed(), sub.master_seed());
        let a: u64 = f.stream("s").gen();
        let b: u64 = sub.stream("s").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = RngFactory::new(5).stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean} too far from 3.0");
        assert!((var - 4.0).abs() < 0.25, "variance {var} too far from 4.0");
    }

    #[test]
    fn exponential_sampler_mean() {
        let mut rng = RngFactory::new(5).stream("exp");
        let n = 20_000;
        let mean = (0..n).map(|_| sample_exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} too far from 1/λ = 2.0");
    }

    #[test]
    fn stream_rng_is_counter_addressable() {
        // Output i must be a pure function of (key, i): sequential draws
        // and O(1) jumps read the same stream.
        let key = RngFactory::new(7).stream_key("world", 0);
        let mut seq = StreamRng::new(key);
        let sequential: Vec<u64> = (0..32).map(|_| seq.gen::<u64>()).collect();
        for (i, &want) in sequential.iter().enumerate() {
            assert_eq!(StreamRng::at(key, i as u64).gen::<u64>(), want, "position {i}");
        }
        assert_eq!(seq.position(), 32);
    }

    #[test]
    fn stream_keys_decorrelate_per_index() {
        let base = RngFactory::new(11).stream_key("nodes", 3);
        let mut firsts: Vec<u64> =
            (0..256).map(|i| StreamRng::new(split_key(base, i)).gen()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 256, "split streams must not collide");
        // Composition axes are independent: (a then b) != (b then a).
        assert_ne!(split_key(split_key(base, 1), 2), split_key(split_key(base, 2), 1));
    }

    #[test]
    fn stream_rng_normal_moments() {
        // The Box–Muller sampler over the counter stream keeps its moments
        // — the split generator is a drop-in for the seeded one.
        let key = RngFactory::new(13).stream_key("normal", 0);
        let mut rng = StreamRng::new(key);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, -1.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean + 1.0).abs() < 0.05, "mean {mean} too far from -1.0");
        assert!((var - 0.25).abs() < 0.05, "variance {var} too far from 0.25");
    }

    #[test]
    fn std_normal_pair_moments_and_independence() {
        let mut rng = RngFactory::new(17).stream("pair");
        let n = 20_000;
        let pairs: Vec<(f64, f64)> = (0..n).map(|_| sample_std_normal_pair(&mut rng)).collect();
        for pick in [0usize, 1] {
            let xs: Vec<f64> = pairs.iter().map(|&(a, b)| if pick == 0 { a } else { b }).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(mean.abs() < 0.05, "half {pick}: mean {mean} too far from 0");
            assert!((var - 1.0).abs() < 0.05, "half {pick}: variance {var} too far from 1");
        }
        // The halves are uncorrelated (orthogonal cos/sin projections).
        let cov = pairs.iter().map(|&(a, b)| a * b).sum::<f64>() / n as f64;
        assert!(cov.abs() < 0.05, "pair covariance {cov} too large");
    }

    #[test]
    fn stream_key_depends_on_master_label_and_index() {
        let f = RngFactory::new(21);
        assert_ne!(f.stream_key("a", 0), f.stream_key("b", 0));
        assert_ne!(f.stream_key("a", 0), f.stream_key("a", 1));
        assert_ne!(f.stream_key("a", 0), RngFactory::new(22).stream_key("a", 0));
        assert_eq!(f.stream_key("a", 5), RngFactory::new(21).stream_key("a", 5));
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the splitmix64 reference implementation
        // with seed 0: first output must be 0x E220A8397B1DCDAF.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }
}
