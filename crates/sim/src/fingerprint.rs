//! Order-sensitive FNV-1a fingerprints for determinism checks.
//!
//! Fixed-seed simulations must be bit-reproducible; the golden tests and
//! the bench artifacts pin that property by hashing every deterministic
//! observable of a run into one `u64`. The hasher lives here so every
//! layer (core metrics, scenario reports, bench binaries) fingerprints
//! with the same algorithm.

/// Incremental FNV-1a accumulator.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Fresh accumulator at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    /// Mix one `u64` (little-endian byte order).
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Mix a float by bit pattern — runs must be bit-identical, so exact
    /// representation equality is the right notion (NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Mix a byte string (length-prefixed so concatenations can't collide).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv::new();
        a.u64(1);
        a.u64(2);
        let mut b = Fnv::new();
        b.u64(1);
        b.u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.u64(2);
        c.u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = Fnv::new();
        a.f64(0.0);
        let mut b = Fnv::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "+0.0 and -0.0 differ bitwise");
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = Fnv::new();
        a.str("ab");
        a.str("c");
        let mut b = Fnv::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn matches_reference_vector() {
        // FNV-1a of the single byte 0x00 (after the 8-byte LE encoding of 0
        // this is just eight zero bytes folded in).
        let mut h = Fnv::new();
        h.u64(0);
        assert_eq!(h.finish(), {
            let mut x: u64 = 0xcbf29ce484222325;
            for _ in 0..8 {
                x = x.wrapping_mul(0x100000001b3);
            }
            x
        });
    }
}
