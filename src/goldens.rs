//! The golden-pin manifest: every recorded fingerprint in one place.
//!
//! A *golden pin* is a fixed-seed fingerprint of an observable —
//! a complete [`RunResult`](crate::core::RunResult) or a sweep
//! [`ScenarioReport`] — recorded once and asserted on every test run, so
//! behaviour drift fails loudly. The scenario constructors and the pinned
//! constants both live here; the workspace golden tests
//! (`tests/determinism_golden.rs`, `tests/scenario_golden.rs`) assert
//! against this manifest, and the `record_goldens` bench binary
//! regenerates it (plus `crates/scenario/src/registry.rs` and
//! `BENCH_2.json`) in one pass:
//!
//! ```text
//! cargo run --release -p dirq-bench --bin record_goldens            # re-record
//! cargo run --release -p dirq-bench --bin record_goldens -- --check # CI gate
//! ```
//!
//! Intentional behaviour breaks (protocol changes, RNG stream changes)
//! re-record everything in a single commit via the tool; the `--check`
//! mode recomputes every pin fresh and fails CI when a stale golden (or a
//! stale `BENCH_2.json`) was left behind.

use dirq_core::{run_scenario, AtcConfig, ChurnSpec, DeltaPolicy, ScenarioConfig};
use dirq_scenario::registry;
use dirq_scenario::{run_matrix_report, ScenarioSpec, SweepConfig};

// --- engine-level pins (tests/determinism_golden.rs) ---------------------

/// 64-node fixed-δ scenario exercising the steady-state hot path.
pub fn fixed_delta_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 64,
        epochs: 1_200,
        measure_from_epoch: 200,
        delta_policy: DeltaPolicy::Fixed(5.0),
        ..ScenarioConfig::paper(64_001)
    }
}

/// 64-node ATC scenario with churn, exercising repair, retracts and the
/// EHr/budget loop on top of the same hot path.
pub fn atc_churn_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 64,
        epochs: 1_200,
        measure_from_epoch: 200,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        churn: ChurnSpec::RandomDeaths { deaths: 4, from_epoch: 300, until_epoch: 600 },
        ..ScenarioConfig::paper(64_002)
    }
}

/// Short-epoch engine-level pin of a registry preset: the preset's exact
/// deployment/workload at a reduced epoch budget, so the large-topology
/// code paths sit inside tier-1 `cargo test` at debug-mode speed.
fn preset_scenario(name: &str, epochs: u64) -> ScenarioConfig {
    let spec = dirq_scenario::preset(name).expect("registry preset");
    let scheme = spec.schemes[0];
    ScenarioConfig { epochs, measure_from_epoch: epochs / 5, ..spec.config(scheme, spec.seed) }
}

/// 2 000-node jittered grid, 40 epochs (dense link-matrix `has_link`).
pub fn grid_2000_scenario() -> ScenarioConfig {
    preset_scenario("grid_2000", 40)
}

/// 5 000-node uniform deployment, 24 epochs — above `DENSE_LINK_MAX_NODES`,
/// pinning the CSR-fallback topology path at engine level.
pub fn stress_5000_scenario() -> ScenarioConfig {
    preset_scenario("stress_5000", 24)
}

/// 20 000-node uniform deployment, 24 epochs — the first point past the
/// protocol-plane sharding floor, pinned in release mode only (the
/// `record_goldens` manifest; no debug-tier test asserts it).
pub fn stress_20000_scenario() -> ScenarioConfig {
    preset_scenario("stress_20000", 24)
}

/// 50 000-node uniform deployment, 24 epochs — the registry's scale
/// ceiling, pinned in release mode only (the `record_goldens` manifest;
/// no debug-tier test asserts it).
pub fn stress_50000_scenario() -> ScenarioConfig {
    preset_scenario("stress_50000", 24)
}

/// Scenario under the snapshot-codec pin: ATC + churn over the small
/// paper deployment, stepped 90 epochs — deep enough that the MAC, the
/// pending-query set, the repair timers and the EHr loop all carry
/// non-trivial state into the snapshot.
pub fn snapshot_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 50,
        epochs: 240,
        measure_from_epoch: 48,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        churn: ChurnSpec::RandomDeaths { deaths: 3, from_epoch: 40, until_epoch: 120 },
        ..ScenarioConfig::paper_small(50_001)
    }
}

/// Fresh [`Engine::state_fingerprint`](crate::core::Engine) of
/// [`snapshot_scenario`] at epoch 90 — the recording convention behind
/// [`GOLDEN_SNAPSHOT_STATE`]. Any change to the snapshot byte layout (or
/// to engine behaviour feeding it) moves this value.
pub fn snapshot_state_fingerprint() -> u64 {
    let mut engine = dirq_core::Engine::new(snapshot_scenario());
    for _ in 0..90 {
        engine.step_epoch();
    }
    engine.state_fingerprint()
}

// --- report-level pins (tests/scenario_golden.rs) ------------------------

/// Small: the CI smoke preset — 100-node jittered grid, 400 epochs.
/// Pinned by [`registry::SMOKE_GOLDEN_FINGERPRINT`].
pub fn small_spec() -> ScenarioSpec {
    registry::smoke()
}

/// Medium: 300 nodes at 30 % sensor coverage under ATC, 300 epochs.
pub fn medium_spec() -> ScenarioSpec {
    registry::hetero_types_300().scaled(0.125)
}

/// Large: the 2 000-node grid deployment, 40 epochs.
pub fn large_spec() -> ScenarioSpec {
    registry::grid_2000().scaled(0.1)
}

/// Extra-large: the 5 000-node stress deployment at the scaling floor
/// (80 epochs) — the full report pipeline over a >`DENSE_LINK_MAX_NODES`
/// topology, inside tier-1 `cargo test`.
pub fn xlarge_spec() -> ScenarioSpec {
    registry::stress_5000().scaled(0.1)
}

/// Multi-sink: the 400-node nearest-sink-attachment grid, 300 epochs.
pub fn multi_sink_spec() -> ScenarioSpec {
    registry::multi_sink_grid_400().scaled(0.25)
}

/// Lossy × churn: shadowed log-distance radio with mid-run deaths,
/// 400 epochs.
pub fn churn_lossy_spec() -> ScenarioSpec {
    registry::churn_lossy_250().scaled(0.25)
}

/// Redeployment: the staged-births preset, 600 epochs (the birth window
/// scales with the run, so the wave still lands mid-run).
pub fn redeploy_spec() -> ScenarioSpec {
    registry::redeploy_150().scaled(0.25)
}

/// Single-replicate, single-thread sweep fingerprint of one spec — the
/// recording convention every report-level pin uses.
pub fn report_fingerprint(spec: ScenarioSpec) -> u64 {
    run_matrix_report(&[spec], &SweepConfig { threads: 1, ..SweepConfig::default() })
        .stable_fingerprint()
}

// --- the recorded constants ----------------------------------------------
// Every constant below is rewritten in place by `record_goldens`; keep the
// `pub const NAME: u64 = 0x...;` shape machine-editable.

/// Golden fingerprint of [`fixed_delta_scenario`].
pub const GOLDEN_FIXED: u64 = 0x5A2824B6634C0AD8;

/// Golden fingerprint of [`atc_churn_scenario`].
pub const GOLDEN_ATC_CHURN: u64 = 0x7B0B79719F5C46E1;

/// Golden fingerprint of [`grid_2000_scenario`].
pub const GOLDEN_GRID_2000: u64 = 0xC6B4B398470A2A93;

/// Golden fingerprint of [`stress_5000_scenario`].
pub const GOLDEN_STRESS_5000: u64 = 0x32968FB41C468CD8;

/// Golden fingerprint of [`stress_20000_scenario`].
pub const GOLDEN_STRESS_20000: u64 = 0x6AD73625527CF480;

/// Golden fingerprint of [`stress_50000_scenario`].
pub const GOLDEN_STRESS_50000: u64 = 0x9551369E79F990A7;

/// Golden fingerprint of [`snapshot_state_fingerprint`] — the snapshot
/// codec pin (`tests/snapshot_differential.rs`).
pub const GOLDEN_SNAPSHOT_STATE: u64 = 0x5778F391E49DF93C;

/// Golden fingerprint of the [`medium_spec`] sweep report.
pub const GOLDEN_MEDIUM: u64 = 0x889291EC21F8E973;

/// Golden fingerprint of the [`large_spec`] sweep report.
pub const GOLDEN_LARGE: u64 = 0xB28B9992AACAF68D;

/// Golden fingerprint of the [`xlarge_spec`] sweep report.
pub const GOLDEN_XLARGE: u64 = 0x5857C4BEF3A17639;

/// Golden fingerprint of the [`multi_sink_spec`] sweep report.
pub const GOLDEN_MULTI_SINK: u64 = 0x24113167AA12BE1C;

/// Golden fingerprint of the [`churn_lossy_spec`] sweep report.
pub const GOLDEN_CHURN_LOSSY: u64 = 0xA147495BE99F3500;

/// Golden fingerprint of the [`redeploy_spec`] sweep report.
pub const GOLDEN_REDEPLOY: u64 = 0x21E9433A6A9A391D;

// --- the manifest ---------------------------------------------------------

/// Repo-relative path of this file (the target `record_goldens` patches).
pub const GOLDENS_FILE: &str = "src/goldens.rs";

/// Repo-relative path of the registry constants file.
pub const REGISTRY_FILE: &str = "crates/scenario/src/registry.rs";

/// One recorded fingerprint: where it lives, what it currently says and
/// how to recompute it from scratch.
pub struct GoldenPin {
    /// Constant name as it appears in [`GoldenPin::file`].
    pub name: &'static str,
    /// Repo-relative path of the file declaring the constant.
    pub file: &'static str,
    /// The checked-in value.
    pub recorded: u64,
    /// Recompute the fingerprint from scratch (full deterministic run).
    pub compute: fn() -> u64,
}

/// Every pinned fingerprint except the full-budget registry golden
/// ([`registry::REGISTRY_GOLDEN_FINGERPRINT`]), which `record_goldens`
/// recomputes from the same full matrix run that rewrites `BENCH_2.json`.
/// Ordered cheapest-first so a sequential pass fails fast.
pub fn pins() -> Vec<GoldenPin> {
    vec![
        GoldenPin {
            name: "GOLDEN_FIXED",
            file: GOLDENS_FILE,
            recorded: GOLDEN_FIXED,
            compute: || run_scenario(fixed_delta_scenario()).stable_fingerprint(),
        },
        GoldenPin {
            name: "GOLDEN_ATC_CHURN",
            file: GOLDENS_FILE,
            recorded: GOLDEN_ATC_CHURN,
            compute: || run_scenario(atc_churn_scenario()).stable_fingerprint(),
        },
        GoldenPin {
            name: "GOLDEN_SNAPSHOT_STATE",
            file: GOLDENS_FILE,
            recorded: GOLDEN_SNAPSHOT_STATE,
            compute: snapshot_state_fingerprint,
        },
        GoldenPin {
            name: "SMOKE_GOLDEN_FINGERPRINT",
            file: REGISTRY_FILE,
            recorded: registry::SMOKE_GOLDEN_FINGERPRINT,
            compute: || report_fingerprint(small_spec()),
        },
        GoldenPin {
            name: "GOLDEN_MEDIUM",
            file: GOLDENS_FILE,
            recorded: GOLDEN_MEDIUM,
            compute: || report_fingerprint(medium_spec()),
        },
        GoldenPin {
            name: "GOLDEN_MULTI_SINK",
            file: GOLDENS_FILE,
            recorded: GOLDEN_MULTI_SINK,
            compute: || report_fingerprint(multi_sink_spec()),
        },
        GoldenPin {
            name: "GOLDEN_CHURN_LOSSY",
            file: GOLDENS_FILE,
            recorded: GOLDEN_CHURN_LOSSY,
            compute: || report_fingerprint(churn_lossy_spec()),
        },
        GoldenPin {
            name: "GOLDEN_REDEPLOY",
            file: GOLDENS_FILE,
            recorded: GOLDEN_REDEPLOY,
            compute: || report_fingerprint(redeploy_spec()),
        },
        GoldenPin {
            name: "GOLDEN_GRID_2000",
            file: GOLDENS_FILE,
            recorded: GOLDEN_GRID_2000,
            compute: || run_scenario(grid_2000_scenario()).stable_fingerprint(),
        },
        GoldenPin {
            name: "GOLDEN_STRESS_5000",
            file: GOLDENS_FILE,
            recorded: GOLDEN_STRESS_5000,
            compute: || run_scenario(stress_5000_scenario()).stable_fingerprint(),
        },
        GoldenPin {
            name: "GOLDEN_LARGE",
            file: GOLDENS_FILE,
            recorded: GOLDEN_LARGE,
            compute: || report_fingerprint(large_spec()),
        },
        GoldenPin {
            name: "GOLDEN_XLARGE",
            file: GOLDENS_FILE,
            recorded: GOLDEN_XLARGE,
            compute: || report_fingerprint(xlarge_spec()),
        },
        GoldenPin {
            name: "GOLDEN_STRESS_20000",
            file: GOLDENS_FILE,
            recorded: GOLDEN_STRESS_20000,
            compute: || run_scenario(stress_20000_scenario()).stable_fingerprint(),
        },
        GoldenPin {
            name: "GOLDEN_STRESS_50000",
            file: GOLDENS_FILE,
            recorded: GOLDEN_STRESS_50000,
            compute: || run_scenario(stress_50000_scenario()).stable_fingerprint(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_names_are_unique_and_files_known() {
        let all = pins();
        let mut names: Vec<&str> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate pin names");
        for p in &all {
            assert!(
                p.file == GOLDENS_FILE || p.file == REGISTRY_FILE,
                "{}: unknown golden file {}",
                p.name,
                p.file
            );
        }
    }
}
