//! # dirq — adaptive directed query dissemination for wireless sensor networks
//!
//! A from-scratch Rust reproduction of *"An Adaptive Directed Query
//! Dissemination Scheme for Wireless Sensor Networks"* (S. Chatterjea,
//! S. De Luigi, P. Havinga — ICPP Workshops 2006), including every
//! substrate the paper runs on:
//!
//! * [`sim`] — a deterministic discrete-event simulation kernel (the
//!   paper used OMNeT++),
//! * [`net`] — node placement, radio models, topology graphs, spanning
//!   trees, unit-cost energy accounting, churn schedules,
//! * [`lmac`] — the LMAC TDMA MAC protocol with distributed slot
//!   scheduling and cross-layer neighbour-liveness upcalls,
//! * [`data`] — a synthetic spatio-temporally correlated sensor world and
//!   a coverage-calibrated range-query workload,
//! * [`core`] — DirQ itself: range tables, the update protocol, directed
//!   query routing, Adaptive Threshold Control, the flooding baseline and
//!   the scenario engine,
//! * [`analytic`] — the closed-form Section 5 cost model,
//! * [`scenario`] — declarative experiment specs, a preset registry
//!   spanning 100–50 000 nodes, and a deterministic sweep executor.
//!
//! ## Quick start
//!
//! ```
//! use dirq::prelude::*;
//!
//! // The paper's evaluation setup at a smoke-test scale.
//! let result = run_scenario(ScenarioConfig {
//!     epochs: 400,
//!     measure_from_epoch: 100,
//!     delta_policy: DeltaPolicy::Fixed(5.0),
//!     ..ScenarioConfig::paper(42)
//! });
//! assert!(result.queries_injected > 0);
//! // Directed dissemination undercuts flooding.
//! assert!(result.cost_per_query().unwrap() < result.flooding_cost_per_query());
//! ```
//!
//! See `examples/` for complete scenarios and `crates/bench` for the
//! binaries regenerating every figure of the paper.

#![warn(missing_docs)]

pub mod goldens;

pub use dirq_analytic as analytic;
pub use dirq_core as core;
pub use dirq_data as data;
pub use dirq_lmac as lmac;
pub use dirq_net as net;
pub use dirq_scenario as scenario;
pub use dirq_sim as sim;

/// The most common imports for building and running scenarios.
pub mod prelude {
    pub use dirq_analytic::{KaryCosts, TopologyCosts};
    pub use dirq_core::{
        run_scenario, AtcConfig, ChurnSpec, DeltaPolicy, DirqNode, Engine, GeoTable,
        PredictiveConfig, Protocol, RadioSpec, RunResult, SamplingStrategy, ScenarioConfig,
        TreeKind,
    };
    pub use dirq_data::{
        QueryGenerator, QueryId, RangeQuery, SensorCatalog, SensorType, SensorWorld, WorldConfig,
    };
    pub use dirq_lmac::{Destination, LmacConfig, LmacNetwork, MacIndication};
    pub use dirq_net::{
        churn::{ChurnEvent, ChurnPlan},
        placement::{Placement, SinkPlacement},
        radio::{LogDistance, UnitDisk},
        EnergyLedger, NodeId, Position, Rect, SpanningTree, Topology,
    };
    pub use dirq_scenario::{
        preset, registry, run_matrix_report, ChurnProfile, ScenarioReport, ScenarioSpec, Scheme,
        SweepConfig,
    };
    pub use dirq_sim::{RngFactory, SimDuration, SimTime};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let costs = KaryCosts::compute(2, 4);
        assert_eq!(costs.flooding, 91);
        let cfg = ScenarioConfig::paper_small(1);
        assert_eq!(cfg.n_nodes, 50);
    }
}
