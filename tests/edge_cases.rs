//! Degenerate-configuration and failure-injection tests: the engine and
//! substrates must stay well-defined far from the paper's 50-node sweet
//! spot.

use dirq::prelude::*;

#[test]
fn path_graph_scenario_runs() {
    // CompleteKary with k = 1 degenerates to a path: the hardest shape for
    // dissemination latency (depth = N − 1).
    let r = run_scenario(ScenarioConfig {
        tree: TreeKind::CompleteKary { k: 1, d: 7 },
        epochs: 600,
        measure_from_epoch: 100,
        completion_window: 18,
        ..ScenarioConfig::paper(60)
    });
    assert_eq!(r.n_nodes, 8);
    assert!(r.queries_injected > 0);
    // Flooding cost on a path: N + 2(N−1) = 3N − 2 = 22.
    assert_eq!(r.flooding_cost_per_query(), 22.0);
}

#[test]
fn tiny_network_survives() {
    let r = run_scenario(ScenarioConfig {
        n_nodes: 3,
        side: 20.0,
        radio_range: 25.0,
        epochs: 500,
        measure_from_epoch: 100,
        sensor_coverage: 1.0,
        ..ScenarioConfig::paper(61)
    });
    assert_eq!(r.n_nodes, 3);
    // With 2 sensing nodes the calibrator still produces queries.
    assert!(r.queries_injected > 0);
}

#[test]
fn sparse_sensor_coverage_still_queryable() {
    let r = run_scenario(ScenarioConfig {
        sensor_coverage: 0.05, // ~2 carriers per type
        epochs: 800,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(62)
    });
    assert!(r.queries_injected > 0, "at least one carrier exists per type");
    let recall = r.metrics.mean_over_queries(|o| o.source_recall());
    if let Some(recall) = recall {
        assert!(recall > 0.8, "sparse coverage recall {recall:.3}");
    }
}

#[test]
fn high_query_rate_does_not_backlog() {
    // One query per 4 epochs: eight times the paper's load.
    let r = run_scenario(ScenarioConfig {
        query_period: 4,
        completion_window: 3,
        epochs: 800,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(63)
    });
    assert!(r.queries_injected >= 190);
    // With the short completion window some deep deliveries are cut off;
    // recall may dip but the engine must not wedge.
    assert_eq!(r.metrics.outcomes.len(), r.queries_injected);
}

#[test]
fn zero_sized_mac_frames_rejected() {
    let result = std::panic::catch_unwind(|| {
        let _ = Engine::new(ScenarioConfig {
            lmac: LmacConfig { slots_per_frame: 0, ..Default::default() },
            ..ScenarioConfig::paper(64)
        });
    });
    assert!(result.is_err(), "invalid MAC config must be rejected loudly");
}

#[test]
fn undersized_mac_frame_panics_with_context() {
    // 4 slots cannot 2-hop-colour a dense 50-node graph.
    let result = std::panic::catch_unwind(|| {
        let _ = Engine::new(ScenarioConfig {
            lmac: LmacConfig { slots_per_frame: 4, ..Default::default() },
            ..ScenarioConfig::paper(65)
        });
    });
    assert!(result.is_err());
}

#[test]
fn long_idle_periods_are_quiet() {
    // No queries at all: only updates and EHr flow, and the run stays
    // consistent.
    let r = run_scenario(ScenarioConfig {
        query_period: 10_000, // never fires within the run
        epochs: 900,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(66)
    });
    assert_eq!(r.queries_injected, 0);
    assert_eq!(r.metrics.query_cost.cost(), 0.0);
    assert!(r.metrics.update_cost.tx > 0, "updates flow regardless of queries");
}

#[test]
fn all_carriers_of_a_type_can_die() {
    // Kill enough nodes that some sensor type may lose all carriers; the
    // generator must skip such types gracefully.
    let r = run_scenario(ScenarioConfig {
        sensor_coverage: 0.1,
        churn: ChurnSpec::RandomDeaths { deaths: 20, from_epoch: 100, until_epoch: 300 },
        epochs: 1_000,
        measure_from_epoch: 50,
        ..ScenarioConfig::paper(67)
    });
    // No panic + queries before the die-off existed.
    assert!(r.metrics.outcomes.iter().any(|o| o.epoch < 100 || o.epoch > 300));
}

#[test]
fn single_slot_capacity_mac_still_delivers() {
    let r = run_scenario(ScenarioConfig {
        lmac: LmacConfig { data_messages_per_slot: 1, ..Default::default() },
        epochs: 800,
        measure_from_epoch: 200,
        ..ScenarioConfig::paper(68)
    });
    let recall = r.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
    assert!(recall > 0.85, "throttled MAC recall {recall:.3}");
}

#[test]
fn complete_kary_ignores_n_nodes() {
    let r = run_scenario(ScenarioConfig {
        n_nodes: 9_999,
        tree: TreeKind::CompleteKary { k: 3, d: 2 },
        epochs: 300,
        measure_from_epoch: 50,
        ..ScenarioConfig::paper(69)
    });
    assert_eq!(r.n_nodes, 13);
}
