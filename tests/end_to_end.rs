//! End-to-end integration tests: full simulations across all crates,
//! asserting the qualitative results of the paper's evaluation at
//! smoke-test scale.

use dirq::prelude::*;

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig { epochs: 1_500, measure_from_epoch: 300, ..ScenarioConfig::paper(seed) }
}

#[test]
fn dirq_beats_flooding_at_every_relevance_level() {
    for &target in &[0.2, 0.4, 0.6] {
        let dirq = run_scenario(ScenarioConfig {
            target_fraction: target,
            delta_policy: DeltaPolicy::Fixed(5.0),
            ..base(1)
        });
        let flooding = run_scenario(ScenarioConfig {
            target_fraction: target,
            protocol: Protocol::Flooding,
            ..base(1)
        });
        let dc = dirq.cost_per_query().unwrap();
        let fc = flooding.cost_per_query().unwrap();
        assert!(dc < fc, "target {target}: DirQ {dc:.1} should undercut flooding {fc:.1}");
    }
}

#[test]
fn update_traffic_monotone_in_delta() {
    // Fig. 6's core ordering: larger thresholds, fewer update messages.
    let mut last = u64::MAX;
    for &delta in &[3.0, 5.0, 9.0] {
        let r = run_scenario(ScenarioConfig { delta_policy: DeltaPolicy::Fixed(delta), ..base(2) });
        let tx = r.metrics.update_cost.tx;
        assert!(tx < last, "δ={delta}%: {tx} updates, expected fewer than {last}");
        last = tx;
    }
}

#[test]
fn overshoot_grows_with_delta_and_shrinks_with_relevance() {
    // Fig. 5 / Fig. 7 orderings.
    let overshoot = |delta: f64, target: f64| {
        run_scenario(ScenarioConfig {
            delta_policy: DeltaPolicy::Fixed(delta),
            target_fraction: target,
            ..base(3)
        })
        .mean_overshoot_pct()
    };
    let d3 = overshoot(3.0, 0.4);
    let d9 = overshoot(9.0, 0.4);
    assert!(d9 > d3, "overshoot must grow with δ: δ3={d3:.1}% δ9={d9:.1}%");

    let narrow = overshoot(5.0, 0.2);
    let wide = overshoot(5.0, 0.6);
    assert!(wide < narrow, "overshoot must shrink with relevance: 20%={narrow:.1}% 60%={wide:.1}%");
}

#[test]
fn queries_reach_sources_with_high_recall() {
    let r = run_scenario(ScenarioConfig { delta_policy: DeltaPolicy::Fixed(3.0), ..base(4) });
    let recall = r.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
    assert!(recall > 0.9, "mean source recall {recall:.3} too low");
}

#[test]
fn flooding_reaches_every_alive_node() {
    let r = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..base(5) });
    for o in r.metrics.outcomes.iter().filter(|o| o.epoch >= 300) {
        assert_eq!(o.received, r.n_nodes - 1, "flooding must reach all non-root nodes");
    }
}

#[test]
fn runs_are_deterministic_across_thread_counts() {
    // The sweep runner must not affect per-run results.
    let cfgs = vec![base(6), base(7)];
    let seq = dirq::sim::runner::run_sweep(&cfgs, 1, |c| run_scenario(c.clone()));
    let par = dirq::sim::runner::run_sweep(&cfgs, 2, |c| run_scenario(c.clone()));
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.metrics.update_cost.tx, b.metrics.update_cost.tx);
        assert_eq!(a.metrics.query_cost.rx, b.metrics.query_cost.rx);
        assert_eq!(a.queries_injected, b.queries_injected);
    }
}

#[test]
fn atc_lands_near_the_cost_band() {
    // Full convergence needs ~20k epochs; at 4k we assert a loose corridor.
    let r = run_scenario(ScenarioConfig {
        epochs: 4_000,
        measure_from_epoch: 1_000,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        ..ScenarioConfig::paper(8)
    });
    let ratio = r.cost_ratio_vs_flooding().unwrap();
    assert!(
        (0.35..=0.70).contains(&ratio),
        "ATC cost ratio {ratio:.3} far outside the expected corridor"
    );
}

#[test]
fn cost_categories_decompose_total() {
    let r = run_scenario(base(9));
    let total = r.metrics.total_cost();
    let sum =
        r.metrics.query_cost.cost() + r.metrics.update_cost.cost() + r.metrics.control_cost.cost();
    assert_eq!(total, sum);
    assert!(r.metrics.query_cost.cost() > 0.0);
    assert!(r.metrics.update_cost.cost() > 0.0);
}

#[test]
fn per_query_outcomes_are_internally_consistent() {
    let r = run_scenario(base(10));
    for o in &r.metrics.outcomes {
        assert_eq!(o.received, o.received_should + o.received_should_not, "{o:?}");
        assert!(o.received_should <= o.should_receive, "{o:?}");
        assert!(o.sources_reached <= o.true_sources, "{o:?}");
        assert!(o.true_sources <= o.should_receive, "{o:?}");
        assert!(o.received < o.n_nodes, "{o:?}");
    }
}
