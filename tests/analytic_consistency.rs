//! Cross-crate validation of the Section 5 cost model: the simulator and
//! the closed forms must agree wherever both are defined.

use dirq::prelude::*;

#[test]
fn simulated_flooding_matches_closed_form_on_kary_trees() {
    for &(k, d) in &[(2usize, 3u32), (2, 4), (3, 3), (4, 2)] {
        let r = run_scenario(ScenarioConfig {
            tree: TreeKind::CompleteKary { k, d },
            protocol: Protocol::Flooding,
            epochs: 800,
            measure_from_epoch: 100,
            ..ScenarioConfig::paper(11)
        });
        let analytic = KaryCosts::compute(k as u32, d);
        assert_eq!(r.flooding_cost_per_query(), analytic.flooding as f64);
        let measured = r.cost_per_query().unwrap();
        let rel = (measured - analytic.flooding as f64).abs() / analytic.flooding as f64;
        assert!(
            rel < 0.02,
            "k={k} d={d}: measured {measured:.1} vs analytic {} (rel {rel:.4})",
            analytic.flooding
        );
    }
}

#[test]
fn flooding_on_random_deployment_matches_n_plus_2l() {
    let r = run_scenario(ScenarioConfig {
        protocol: Protocol::Flooding,
        epochs: 800,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(12)
    });
    let expected = r.analytic.n as f64 + 2.0 * r.analytic.links as f64;
    assert_eq!(r.flooding_cost_per_query(), expected);
    let measured = r.cost_per_query().unwrap();
    assert!(
        ((measured - expected).abs() / expected) < 0.02,
        "measured {measured:.1} vs N+2L {expected:.1}"
    );
}

#[test]
fn paper_worked_example_is_exact() {
    let c = KaryCosts::compute(2, 4);
    assert_eq!(c.f_max_exact(), Some((46, 60)));
    // Both the paper-truncated and exact values.
    let f = c.f_max().unwrap();
    assert!((f - 46.0 / 60.0).abs() < 1e-15);
    assert_eq!((f * 100.0).floor() as u32, 76);
}

#[test]
fn topology_costs_agree_with_kary_costs() {
    for &(k, d) in &[(2usize, 4u32), (3, 2), (5, 2), (8, 1)] {
        let (topo, tree) = SpanningTree::complete_kary(k, d);
        let tc = TopologyCosts::compute(&topo, &tree);
        let kc = KaryCosts::compute(k as u32, d);
        assert_eq!(tc.flooding as u128, kc.flooding);
        assert_eq!(tc.cqd_max as u128, kc.cqd_max);
        assert_eq!(tc.cud_max as u128, kc.cud_max);
    }
}

#[test]
fn dirq_worst_case_budget_identity() {
    // CQDmax + fMax·CUDmax == CF exactly (Eq. 8 at the boundary).
    for k in 1..=8u32 {
        for d in 1..=8u32 {
            let c = KaryCosts::compute(k, d);
            assert!(c.budget_identity_holds(), "identity fails at k={k} d={d}");
        }
    }
}

#[test]
fn u_max_line_consistent_between_engine_and_model() {
    let r = run_scenario(ScenarioConfig {
        epochs: 500,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(13)
    });
    let queries_per_hour = 400.0 / 20.0;
    let expected = r.analytic.f_max().unwrap() * (r.analytic.n - 1) as f64 * queries_per_hour;
    // The engine may re-estimate hourly as the tree evolves; with no churn
    // it must match the initial model closely.
    let rel = (r.u_max_per_hour - expected).abs() / expected;
    assert!(rel < 0.05, "Umax/hr {:.1} vs {:.1}", r.u_max_per_hour, expected);
}
