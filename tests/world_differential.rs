//! Differential property tests for the split-stream world generator.
//!
//! The per-epoch advance of [`SensorWorld`] shards `(node, type)` cells
//! over the worker pool; the serial loop is the reference implementation.
//! 256 sampled cases pin, on arbitrary deployments, sensor coverage and
//! assignment churn:
//!
//! * **parallel ≡ serial** — worlds advancing with 2 and 4 forced-sharded
//!   workers are bit-equal to the serial reference on every reading and
//!   every per-type aggregate, at every epoch;
//! * **stream isolation** — removing and re-adding sensors on victim
//!   nodes (the world-level effect of churn deaths/births and of the
//!   runtime `add_sensor`/`remove_sensor` extension) never perturbs any
//!   other `(node, type)` sequence, because each cell draws from its own
//!   counter-based stream.

use dirq::data::sensor::SensorAssignment;
use dirq::data::SensorCatalog;
use dirq::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A world over `n` seeded uniform positions (no connectivity requirement
/// — the generator only consumes positions) with heterogeneous coverage.
fn build_world(n: usize, coverage: f64, seed: u64) -> SensorWorld {
    let f = RngFactory::new(seed);
    let mut pos_rng = f.stream("positions");
    let positions: Vec<Position> = (0..n)
        .map(|_| Position { x: pos_rng.gen_range(0.0..100.0), y: pos_rng.gen_range(0.0..100.0) })
        .collect();
    let topo = Topology::from_positions(positions, &UnitDisk::new(30.0));
    let catalog = SensorCatalog::environmental();
    let assignment =
        SensorAssignment::heterogeneous(n, catalog.len(), coverage, &mut f.stream("assign"));
    SensorWorld::new(&WorldConfig::environmental(100.0), catalog, assignment, &topo, &f)
}

/// All readings of every type at the current epoch, as exact bits.
fn snapshot(world: &SensorWorld) -> Vec<Vec<u64>> {
    world
        .catalog()
        .types()
        .map(|t| world.readings(t).iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Per-type observed min/max aggregates, as exact bits.
fn aggregates(world: &SensorWorld) -> Vec<Option<(u64, u64)>> {
    world
        .catalog()
        .types()
        .map(|t| world.value_range(t).map(|(lo, hi)| (lo.to_bits(), hi.to_bits())))
        .collect()
}

/// Apply one sampled assignment mutation (the world-level footprint of
/// churn and runtime sensor extension) to a world.
fn apply_churn(world: &mut SensorWorld, n: usize, op: (u32, u8, u8)) {
    let (raw_node, raw_type, add) = op;
    let node = raw_node as usize % n;
    let t = SensorType(raw_type % 4);
    if add == 1 {
        world.assignment_mut().add(node, t);
    } else {
        world.assignment_mut().remove(node, t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Sharded advances at 2 and 4 workers are bit-equal to the serial
    /// reference — every reading and every per-type aggregate, at every
    /// epoch, under arbitrary mid-run assignment churn applied to all
    /// worlds alike.
    #[test]
    fn parallel_world_advance_matches_serial_reference(
        n in 8usize..96,
        coverage in 0.05f64..1.0,
        seed in 0u64..1_000_000,
        epochs in 1u64..10,
        churn_ops in proptest::collection::vec((0u32..96, 0u8..4, 0u8..2), 0..12),
    ) {
        let mut reference = build_world(n, coverage, seed);
        let mut sharded: Vec<SensorWorld> = [2usize, 4]
            .iter()
            .map(|&w| {
                let mut world = build_world(n, coverage, seed);
                world.force_sharded_advance(w);
                world
            })
            .collect();
        prop_assert_eq!(snapshot(&reference), snapshot(&sharded[0]), "construction diverged");

        for epoch in 1..=epochs {
            // Spread the sampled churn over the run: op k lands before the
            // advance of epoch (k mod epochs) + 1.
            for (k, &op) in churn_ops.iter().enumerate() {
                if k as u64 % epochs + 1 == epoch {
                    apply_churn(&mut reference, n, op);
                    for world in &mut sharded {
                        apply_churn(world, n, op);
                    }
                }
            }
            reference.advance_epoch();
            let want_snapshot = snapshot(&reference);
            let want_aggregates = aggregates(&reference);
            for (i, world) in sharded.iter_mut().enumerate() {
                world.advance_epoch();
                prop_assert_eq!(world.epoch(), reference.epoch());
                prop_assert_eq!(
                    &snapshot(world),
                    &want_snapshot,
                    "epoch {}: {}-worker advance diverged from serial", epoch, [2, 4][i]
                );
                prop_assert_eq!(
                    &aggregates(world),
                    &want_aggregates,
                    "epoch {}: {}-worker aggregates diverged", epoch, [2, 4][i]
                );
            }
        }
    }

    /// Churning victim cells — removing their sensors mid-run and adding
    /// them back (deaths/births at world level) — never shifts any other
    /// `(node, type)` stream, serial or sharded: every non-victim reading
    /// stays bit-identical to the undisturbed control world.
    #[test]
    fn victim_churn_leaves_other_streams_untouched(
        n in 8usize..96,
        coverage in 0.2f64..1.0,
        seed in 0u64..1_000_000,
        victims in proptest::collection::vec(0u32..96, 1..4),
        death_epoch in 1u64..4,
        rebirth_epoch in 4u64..7,
        workers in 1usize..5,
    ) {
        let mut control = build_world(n, coverage, seed);
        let mut churned = build_world(n, coverage, seed);
        if workers > 1 {
            churned.force_sharded_advance(workers);
        }
        let victim_nodes: Vec<usize> = victims.iter().map(|&v| v as usize % n).collect();
        let is_victim = |node: usize| victim_nodes.contains(&node);

        for epoch in 1..=7u64 {
            if epoch == death_epoch {
                // Death: the node's sensors leave the assignment.
                for &v in &victim_nodes {
                    for t in 0..4u8 {
                        churned.assignment_mut().remove(v, SensorType(t));
                    }
                }
            }
            if epoch == rebirth_epoch {
                // Birth: re-equip every sensor the control world carries.
                for &v in &victim_nodes {
                    for t in 0..4u8 {
                        if control.assignment().has(v, SensorType(t)) {
                            churned.assignment_mut().add(v, SensorType(t));
                        }
                    }
                }
            }
            control.advance_epoch();
            churned.advance_epoch();
            for t in control.catalog().types() {
                for node in 0..n {
                    if is_victim(node) {
                        continue;
                    }
                    prop_assert_eq!(
                        control.reading(node, t).map(f64::to_bits),
                        churned.reading(node, t).map(f64::to_bits),
                        "epoch {}: node {} type {:?} perturbed by victim churn",
                        epoch, node, t
                    );
                }
            }
        }
        // After rebirth the victims generate again for every type the
        // control world carries. (Their values differ from the control's:
        // the local AR(1) state froze while dead — only the draws, not
        // the state, are counter-addressed.)
        for t in control.catalog().types() {
            for &v in &victim_nodes {
                prop_assert_eq!(
                    control.reading(v, t).is_some(),
                    churned.reading(v, t).is_some(),
                    "reborn victim {} type {:?} carrier set diverged", v, t
                );
            }
        }
    }
}
