//! Heterogeneity and post-deployment extensibility (paper Section 4.1,
//! Fig. 4): nodes carry different sensor subsets, Range Tables exist per
//! type only where the type exists in the subtree, and new sensors can be
//! added after deployment without global reconfiguration.

use dirq::prelude::*;

#[test]
fn tables_exist_only_where_the_type_exists_in_the_subtree() {
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 600,
        measure_from_epoch: 100,
        sensor_coverage: 0.4, // strongly heterogeneous
        ..ScenarioConfig::paper(30)
    });
    for _ in 0..200 {
        engine.step_epoch();
    }
    let tree = engine.protocol_tree();
    let world = engine.world();
    for t in world.catalog().types() {
        // For every attached node: a table for `t` implies the type exists
        // at the node itself or somewhere in its subtree.
        for n in engine.topology().nodes() {
            if !tree.is_attached(n) || n.is_root() {
                continue;
            }
            if engine.node(n).table(t).is_some() {
                let subtree = tree.subtree(n);
                let carried = subtree.iter().any(|m| world.assignment().has(m.index(), t));
                assert!(carried, "{n} holds a table for {t} but no node in its subtree carries it");
            }
        }
    }
}

#[test]
fn aggregates_contain_every_subtree_reading() {
    // The advertised [min, max] at each node must (up to δ slack at each
    // level) cover the subtree's current readings. With generous slack
    // accounting we assert containment with a small tolerance.
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 600,
        measure_from_epoch: 100,
        delta_policy: DeltaPolicy::Fixed(3.0),
        ..ScenarioConfig::paper(31)
    });
    for _ in 0..300 {
        engine.step_epoch();
    }
    let tree = engine.protocol_tree();
    let world = engine.world();
    let t = SensorType(0);
    let span = WorldConfig::environmental(100.0).reference_spans()[0];
    // Per-hop slack: δ (update hysteresis) + per-epoch drift before the
    // next update; depth ≤ ~6, so 6·(3% of span) plus padding margin.
    let tolerance = 8.0 * 0.03 * span;
    for n in engine.topology().nodes() {
        if n.is_root() || !tree.is_attached(n) {
            continue;
        }
        let Some(table) = engine.node(n).table(t) else { continue };
        let Some(tx) = table.last_transmitted() else { continue };
        for m in tree.subtree(n) {
            if let Some(reading) = world.reading(m.index(), t) {
                assert!(
                    reading >= tx.min - tolerance && reading <= tx.max + tolerance,
                    "{n}'s advertisement [{:.2}, {:.2}] misses {m}'s reading {reading:.2}",
                    tx.min,
                    tx.max
                );
            }
        }
    }
}

#[test]
fn sensor_added_after_deployment_becomes_queryable() {
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 2_000,
        measure_from_epoch: 100,
        sensor_coverage: 0.5,
        ..ScenarioConfig::paper(32)
    });
    for _ in 0..100 {
        engine.step_epoch();
    }
    // Find a leaf-ish node lacking temperature and equip it.
    let t = SensorType(0);
    let node = engine
        .topology()
        .nodes()
        .find(|&n| {
            !n.is_root()
                && engine.is_alive(n)
                && !engine.world().assignment().has(n.index(), t)
                && engine.node(n).parent().is_some()
        })
        .expect("some node lacks temperature");
    engine.add_sensor(node, t);
    for _ in 0..100 {
        engine.step_epoch();
    }
    // The node now advertises the type: its parent's table has an entry.
    let parent = engine.node(node).parent().unwrap();
    let entry = engine.node(parent).table(t).and_then(|tab| tab.child_entry(node));
    assert!(entry.is_some(), "parent {parent} never learned about {node}'s new sensor");
    // And the root can route a query covering the node's reading.
    let reading = engine.world().reading(node.index(), t).unwrap();
    let root_table = engine.node(NodeId::ROOT).table(t).expect("root table exists");
    let agg = root_table.aggregate().expect("root aggregate exists");
    assert!(
        agg.min <= reading && reading <= agg.max,
        "root aggregate [{:.2}, {:.2}] must cover the new sensor's reading {reading:.2}",
        agg.min,
        agg.max
    );
}

#[test]
fn sensor_removal_retracts_tables() {
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 1_000,
        measure_from_epoch: 100,
        sensor_coverage: 0.5,
        ..ScenarioConfig::paper(33)
    });
    for _ in 0..100 {
        engine.step_epoch();
    }
    let t = SensorType(1);
    // Pick an attached leaf that carries the type.
    let tree = engine.protocol_tree();
    let node = engine
        .topology()
        .nodes()
        .find(|&n| {
            !n.is_root()
                && tree.is_attached(n)
                && tree.children(n).is_empty()
                && engine.world().assignment().has(n.index(), t)
        })
        .expect("an attached leaf carries humidity");
    engine.remove_sensor(node, t);
    for _ in 0..50 {
        engine.step_epoch();
    }
    assert!(
        engine.node(node).table(t).is_none(),
        "leaf's own table should be gone after sensor removal"
    );
    let parent = engine.node(node).parent().unwrap();
    let parent_entry = engine.node(parent).table(t).and_then(|tab| tab.child_entry(node));
    assert!(parent_entry.is_none(), "parent must have processed the Retract for {node}");
}

#[test]
fn queries_span_all_four_types_over_a_run() {
    let r = run_scenario(ScenarioConfig {
        epochs: 3_000,
        measure_from_epoch: 100,
        ..ScenarioConfig::paper(34)
    });
    let mut seen = [false; 4];
    for o in &r.metrics.outcomes {
        seen[o.stype.index()] = true;
    }
    assert!(seen.iter().all(|&s| s), "workload should exercise every sensor type, saw {seen:?}");
}
