//! Differential proof of the snapshot/restore contract: interrupting a
//! run at **any** epoch, serialising the engine, restoring the body onto
//! a freshly built engine and finishing the run must be bit-identical to
//! never having stopped — across protocol schemes, churn regimes,
//! sampling strategies and spatial workloads, with split points landing
//! mid-churn-window and mid-query-flight.
//!
//! Also pins the image format (magic + version + header round-trip) and
//! exercises the typed error paths: malformed input must never panic.

use dirq::prelude::*;
use dirq::sim::json::Json;
use dirq::sim::snap::{frame_image, parse_image, IMAGE_MAGIC, SNAP_FORMAT_VERSION};
use dirq::sim::SnapError;
use proptest::prelude::*;

/// One scenario family per axis the snapshot must cover. `variant`
/// selects the family; every family keeps the 50-node paper deployment
/// so a proptest case stays debug-mode fast.
fn variant_config(seed: u64, variant: u8, epochs: u64) -> ScenarioConfig {
    let base = ScenarioConfig {
        epochs,
        measure_from_epoch: epochs / 5,
        delta_policy: DeltaPolicy::Fixed(5.0),
        ..ScenarioConfig::paper_small(seed)
    };
    match variant {
        // Fixed δ on the steady-state hot path.
        0 => base,
        // Adaptive Threshold Control: EHr loop, budget multiplier, δ trace.
        1 => ScenarioConfig { delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()), ..base },
        // The flooding baseline (per-node rebroadcast dedup state).
        2 => ScenarioConfig { protocol: Protocol::Flooding, ..base },
        // Mid-run deaths: splits inside `[from, until)` land mid-churn,
        // with detachment timers and repair state in flight.
        3 => ScenarioConfig {
            churn: ChurnSpec::RandomDeaths {
                deaths: 4,
                from_epoch: epochs / 4,
                until_epoch: epochs / 2,
            },
            ..base
        },
        // Predictive sampling: per-(node, type) sampler models.
        4 => ScenarioConfig {
            sampling: SamplingStrategy::Predictive(PredictiveConfig::default()),
            ..base
        },
        // The location extension with a spatially scoped workload.
        5 => ScenarioConfig { location_enabled: true, spatial_query_fraction: 0.6, ..base },
        _ => unreachable!("variant out of range"),
    }
}

/// Step `engine` to its epoch budget, then compare the two halves of the
/// differential: snapshot bytes (the strongest equality) and the final
/// run reports.
fn assert_resume_matches(cfg: ScenarioConfig, split: u64) {
    let epochs = cfg.epochs;
    let mut straight = Engine::new(cfg.clone());
    for _ in 0..split {
        straight.step_epoch();
    }
    let body = straight.snapshot();

    let mut resumed = Engine::new(cfg);
    resumed.restore(&body).expect("restore onto a same-config engine");
    assert_eq!(
        straight.state_fingerprint(),
        resumed.state_fingerprint(),
        "restored state must fingerprint-equal the snapshotted engine"
    );

    while straight.epoch() < epochs {
        straight.step_epoch();
    }
    while resumed.epoch() < epochs {
        resumed.step_epoch();
    }
    assert_eq!(
        straight.snapshot(),
        resumed.snapshot(),
        "final dynamic state diverged after resume (split at {split}/{epochs})"
    );
    let (a, b) = (straight.run(), resumed.run());
    assert_eq!(
        a.stable_fingerprint(),
        b.stable_fingerprint(),
        "run reports diverged after resume (split at {split}/{epochs})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The 256-case differential: N epochs + snapshot + restore + M
    /// epochs ≡ N+M epochs straight, across every scenario family and an
    /// arbitrary split point (including epoch 0 and the final epoch).
    #[test]
    fn snapshot_resume_is_bit_identical(
        seed in 0u64..1_000_000,
        variant in 0u8..6,
        extra in 0u64..4,
        split_permille in 0u64..=1000,
    ) {
        let epochs = 60 + 20 * extra;
        let split = split_permille * epochs / 1000;
        assert_resume_matches(variant_config(seed, variant, epochs), split);
    }

    /// Arbitrary byte bodies must decode to a typed error, never panic,
    /// and never "succeed" into a half-restored engine.
    #[test]
    fn restore_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let mut engine = Engine::new(variant_config(7, 0, 60));
        prop_assert!(engine.restore(&bytes).is_err());
    }
}

/// Fixed mid-complexity pin of the same property at a longer budget than
/// the proptest sweep: ATC + churn with the split inside the churn
/// window and queries in flight.
#[test]
fn atc_churn_resume_long_run() {
    let cfg = ScenarioConfig {
        epochs: 400,
        measure_from_epoch: 80,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        churn: ChurnSpec::RandomDeaths { deaths: 5, from_epoch: 100, until_epoch: 250 },
        ..ScenarioConfig::paper_small(40_417)
    };
    assert_resume_matches(cfg, 177);
}

/// The recorded snapshot-state golden: any change to the snapshot byte
/// layout (or to engine behaviour feeding it) must show up here and be
/// re-recorded deliberately via `record_goldens`.
#[test]
fn snapshot_state_fingerprint_is_pinned() {
    assert_eq!(
        dirq::goldens::snapshot_state_fingerprint(),
        dirq::goldens::GOLDEN_SNAPSHOT_STATE,
        "snapshot codec drifted; re-record with \
         `cargo run --release -p dirq-bench --bin record_goldens`"
    );
}

/// External queries share the generator id space, resolve through the
/// completed log, and leave the engine on the same deterministic
/// trajectory as an engine that received the identical call sequence.
#[test]
fn external_queries_complete_and_stay_deterministic() {
    let cfg = variant_config(91, 0, 120);
    let run_once = || {
        let mut e = Engine::new(cfg.clone());
        e.enable_completed_log();
        for _ in 0..30 {
            e.step_epoch();
        }
        let id = e.submit_external_query(SensorType(0), 10.0, 28.0, None);
        let mut seen = Vec::new();
        while e.epoch() < 120 {
            e.step_epoch();
            seen.extend(e.take_completed());
        }
        (id, seen, e.state_fingerprint())
    };
    let (id_a, completed_a, fp_a) = run_once();
    let (id_b, completed_b, fp_b) = run_once();
    assert_eq!(id_a, id_b);
    assert_eq!(fp_a, fp_b, "identical call sequences must be deterministic");
    assert_eq!(completed_a.len(), completed_b.len());
    assert!(completed_a.iter().any(|c| c.outcome.id == id_a), "the external query never completed");
    // The log is observational: an engine with the log disabled follows
    // the exact same trajectory.
    let mut silent = Engine::new(cfg.clone());
    for _ in 0..30 {
        silent.step_epoch();
    }
    let silent_id = silent.submit_external_query(SensorType(0), 10.0, 28.0, None);
    assert_eq!(silent_id, id_a);
    while silent.epoch() < 120 {
        silent.step_epoch();
    }
    assert!(silent.take_completed().is_empty(), "log must stay off until enabled");
    assert_eq!(silent.state_fingerprint(), fp_a);
}

/// Restoring into an engine built from a *different* configuration is a
/// typed error wherever the body carries enough shape to notice.
#[test]
fn restore_rejects_mismatched_configs() {
    let mut donor = Engine::new(variant_config(11, 0, 60));
    for _ in 0..20 {
        donor.step_epoch();
    }
    let body = donor.snapshot();

    // Different node count.
    let cfg = ScenarioConfig { n_nodes: 30, ..variant_config(11, 0, 60) };
    assert!(Engine::new(cfg).restore(&body).is_err(), "node-count mismatch accepted");

    // Different measurement window.
    let cfg = ScenarioConfig { measure_from_epoch: 5, ..variant_config(11, 0, 60) };
    assert!(
        matches!(
            Engine::new(cfg).restore(&body),
            Err(SnapError::Malformed { what: "measurement window mismatch", .. })
        ),
        "measurement-window mismatch accepted"
    );

    // Predictive sampling expects sampler rows the donor never wrote.
    let cfg = ScenarioConfig {
        sampling: SamplingStrategy::Predictive(PredictiveConfig::default()),
        ..variant_config(11, 0, 60)
    };
    assert!(
        matches!(
            Engine::new(cfg).restore(&body),
            Err(SnapError::Malformed {
                what: "sampler presence disagrees with the sampling strategy",
                ..
            })
        ),
        "sampler-presence mismatch accepted"
    );
}

/// Every truncation of a valid body fails loudly; a valid body with
/// trailing bytes fails as [`SnapError::TrailingBytes`]; a corrupted
/// leading tag fails as [`SnapError::BadTag`].
#[test]
fn malformed_bodies_fail_loudly() {
    let mut donor = Engine::new(variant_config(23, 1, 60));
    for _ in 0..25 {
        donor.step_epoch();
    }
    let body = donor.snapshot();

    let fresh = || Engine::new(variant_config(23, 1, 60));
    // Sparse truncation sweep (every prefix would be slow in debug).
    for cut in (0..body.len()).step_by(97).chain([body.len() - 1]) {
        assert!(fresh().restore(&body[..cut]).is_err(), "truncation at {cut} accepted");
    }

    let mut long = body.clone();
    long.push(0);
    assert!(matches!(fresh().restore(&long), Err(SnapError::TrailingBytes { .. })));

    let mut bad_tag = body.clone();
    bad_tag[0] ^= 0xFF;
    assert!(matches!(fresh().restore(&bad_tag), Err(SnapError::BadTag { .. })));

    // And the round trip itself holds.
    let mut ok = fresh();
    ok.restore(&body).expect("unmodified body restores");
    assert_eq!(ok.state_fingerprint(), donor.state_fingerprint());
}

/// The on-disk image format: magic, version, JSON header, byte-exact
/// body recovery, and typed rejection of foreign or future files.
#[test]
fn image_format_is_pinned() {
    // The wire constants are a compatibility promise; bumping them must
    // be a conscious act (update this test + the daemon docs together).
    assert_eq!(IMAGE_MAGIC, b"DIRQSNAP");
    assert_eq!(SNAP_FORMAT_VERSION, 1);

    let mut engine = Engine::new(variant_config(5, 0, 60));
    for _ in 0..15 {
        engine.step_epoch();
    }
    let body = engine.snapshot();
    let mut header = Json::object();
    header.set("preset", Json::Str("paper_small".into()));
    header.set("scheme", Json::Str("fixed:5".into()));
    header.set("seed", Json::Num(5.0));
    header.set("epoch", Json::Num(15.0));
    let image = frame_image(&header, &body);
    assert!(image.starts_with(IMAGE_MAGIC));

    let (parsed, parsed_body) = parse_image(&image).expect("well-formed image");
    assert_eq!(parsed.get("preset").and_then(Json::as_str), Some("paper_small"));
    assert_eq!(parsed.get("epoch").and_then(Json::as_f64), Some(15.0));
    assert_eq!(parsed_body, &body[..], "body must survive framing byte-exact");
    let mut restored = Engine::new(variant_config(5, 0, 60));
    restored.restore(parsed_body).expect("framed body restores");
    assert_eq!(restored.state_fingerprint(), engine.state_fingerprint());

    // Foreign magic.
    let mut foreign = image.clone();
    foreign[0] = b'X';
    assert_eq!(parse_image(&foreign).unwrap_err(), SnapError::BadMagic);
    // A future format version.
    let mut future = image.clone();
    future[8..12].copy_from_slice(&(SNAP_FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(parse_image(&future), Err(SnapError::BadVersion { .. })));
    // Truncations never panic.
    for cut in 0..image.len().min(64) {
        assert!(parse_image(&image[..cut]).is_err());
    }
}
