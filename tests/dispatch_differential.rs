//! Differential property tests for the sharded protocol-plane dispatch.
//!
//! Between MAC slots the engine dispatches each slot's indications to the
//! protocol handlers; with `dispatch_workers > 1` the Delivered prefix is
//! cut into listener-aligned chunks processed concurrently, with the
//! shared-state effects replayed in chunk order. The serial loop is the
//! reference implementation. 256 sampled cases pin, on arbitrary
//! deployments, protocols, windows and churn:
//!
//! * **sharded ≡ serial** — engines with 2 and 4 forced-sharded dispatch
//!   workers stay bit-equal to the serial reference on the in-flight
//!   pending set (ids, per-query tx/rx tallies and reception marks, in
//!   finalisation order) at every epoch, and on the complete metrics
//!   fingerprint at the end;
//! * the expiry-ring ≡ linear-sweep property lives with the structure, in
//!   `crates/core/src/pending.rs`.

use dirq::prelude::*;
use proptest::prelude::*;

fn build(cfg: &ScenarioConfig, forced_workers: usize) -> Engine {
    let mut engine = Engine::new(cfg.clone());
    if forced_workers > 1 {
        engine.force_sharded_dispatch(forced_workers);
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Forced-sharded dispatch at 2 and 4 workers is bit-equal to the
    /// serial reference: same pending set at every epoch (which transitively
    /// pins every indication's tallies and the MAC enqueue order feeding
    /// later epochs), same metrics fingerprint at the end.
    #[test]
    fn sharded_dispatch_matches_serial_reference(
        n in 32usize..72,
        seed in 0u64..1_000_000,
        epochs in 30u64..55,
        completion_window in 4u64..24,
        flooding in 0u8..2,
        churn in 0u8..2,
    ) {
        let (flooding, churn) = (flooding == 1, churn == 1);
        let cfg = ScenarioConfig {
            n_nodes: n,
            epochs,
            measure_from_epoch: 5,
            query_period: 8,
            completion_window,
            hour_epochs: 16,
            protocol: if flooding { Protocol::Flooding } else { Protocol::Dirq },
            churn: if churn {
                ChurnSpec::RandomDeaths { deaths: 2, from_epoch: 5, until_epoch: 20 }
            } else {
                ChurnSpec::None
            },
            ..ScenarioConfig::paper(seed)
        };
        let mut reference = build(&cfg, 1);
        let mut sharded: Vec<Engine> = [2usize, 4].iter().map(|&w| build(&cfg, w)).collect();

        for epoch in 0..epochs {
            reference.step_epoch();
            let want = reference.pending_snapshot();
            for (i, engine) in sharded.iter_mut().enumerate() {
                engine.step_epoch();
                prop_assert_eq!(
                    &engine.pending_snapshot(),
                    &want,
                    "epoch {}: {}-worker dispatch diverged from serial", epoch, [2, 4][i]
                );
            }
        }
        let want = reference.metrics().stable_fingerprint();
        for (i, engine) in sharded.iter().enumerate() {
            prop_assert_eq!(
                engine.metrics().stable_fingerprint(),
                want,
                "{}-worker dispatch metrics diverged from serial", [2, 4][i]
            );
        }
    }
}
