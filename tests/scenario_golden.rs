//! Golden fingerprints for the scenario subsystem (report-level pins).
//!
//! Pins small through extra-large presets so the whole stack —
//! deployment, calibration (warm-started), MAC, churn, world generation,
//! sweep executor and report assembly — is bit-deterministic for a fixed
//! seed, across runs and thread counts. The spec constructors and the
//! recorded fingerprints live in the [`dirq::goldens`] manifest; the
//! full-budget 5 000-node registry run is pinned by the release-mode
//! `scenario_matrix` bench via `BENCH_2.json`.
//!
//! If a PR changes behaviour *intentionally* (protocol feature, RNG
//! stream change, calibration tweak), re-record every pin in one pass:
//! `cargo run --release -p dirq-bench --bin record_goldens`

use dirq::goldens::{
    churn_lossy_spec, large_spec, medium_spec, multi_sink_spec, redeploy_spec, small_spec,
    xlarge_spec, GOLDEN_CHURN_LOSSY, GOLDEN_LARGE, GOLDEN_MEDIUM, GOLDEN_MULTI_SINK,
    GOLDEN_REDEPLOY, GOLDEN_XLARGE,
};
use dirq::prelude::*;
use dirq::scenario::registry::SMOKE_GOLDEN_FINGERPRINT;

fn report_for(spec: ScenarioSpec, threads: usize) -> ScenarioReport {
    run_matrix_report(&[spec], &SweepConfig { threads, ..SweepConfig::default() })
}

#[test]
fn small_scenario_matches_golden() {
    assert_eq!(
        report_for(small_spec(), 1).stable_fingerprint(),
        SMOKE_GOLDEN_FINGERPRINT,
        "small scenario drifted from the recorded golden"
    );
}

#[test]
fn medium_scenario_matches_golden() {
    assert_eq!(
        report_for(medium_spec(), 1).stable_fingerprint(),
        GOLDEN_MEDIUM,
        "medium scenario drifted from the recorded golden"
    );
}

#[test]
fn large_scenario_matches_golden() {
    assert_eq!(
        report_for(large_spec(), 1).stable_fingerprint(),
        GOLDEN_LARGE,
        "large (2000-node grid) scenario drifted from the recorded golden"
    );
}

#[test]
fn xlarge_scenario_matches_golden() {
    assert_eq!(
        report_for(xlarge_spec(), 1).stable_fingerprint(),
        GOLDEN_XLARGE,
        "xlarge (5000-node, CSR has_link fallback) scenario drifted from the recorded golden"
    );
}

#[test]
fn multi_sink_scenario_matches_golden() {
    assert_eq!(
        report_for(multi_sink_spec(), 1).stable_fingerprint(),
        GOLDEN_MULTI_SINK,
        "multi-sink scenario drifted from the recorded golden"
    );
}

#[test]
fn churn_lossy_scenario_matches_golden() {
    assert_eq!(
        report_for(churn_lossy_spec(), 1).stable_fingerprint(),
        GOLDEN_CHURN_LOSSY,
        "lossy x churn scenario drifted from the recorded golden"
    );
}

#[test]
fn redeploy_scenario_matches_golden() {
    assert_eq!(
        report_for(redeploy_spec(), 1).stable_fingerprint(),
        GOLDEN_REDEPLOY,
        "redeployment (births) scenario drifted from the recorded golden"
    );
}

#[test]
fn report_identical_across_thread_counts() {
    let sequential = report_for(small_spec(), 1);
    let parallel = report_for(small_spec(), 4);
    assert_eq!(
        sequential.stable_fingerprint(),
        parallel.stable_fingerprint(),
        "sweep parallelism changed the report"
    );
    // And the JSON artifact is byte-identical too.
    assert_eq!(sequential.to_json().render_pretty(), parallel.to_json().render_pretty());
}

#[test]
fn report_identical_across_intra_run_workers() {
    // MAC colour-class workers, world-generation workers and protocol
    // dispatch workers shard inside one simulation; none may move the
    // report fingerprint. (At this preset's 100 nodes the world and
    // dispatch knobs resolve to the serial loops — the sharded paths
    // themselves are pinned by world_differential.rs and
    // dispatch_differential.rs; the smoke-scaled registry gate in
    // `scenario_matrix --smoke` covers the ≥2 000-node presets where the
    // shard paths really engage.)
    let serial = report_for(small_spec(), 1);
    let sharded = run_matrix_report(
        &[small_spec()],
        &SweepConfig {
            threads: 1,
            mac_workers: 4,
            world_workers: 4,
            dispatch_workers: 4,
            ..SweepConfig::default()
        },
    );
    assert_eq!(
        serial.stable_fingerprint(),
        sharded.stable_fingerprint(),
        "intra-run worker knobs changed the report"
    );
}
