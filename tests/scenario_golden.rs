//! Golden fingerprints for the scenario subsystem.
//!
//! Pins one small, one medium and one large preset so the whole stack —
//! deployment, calibration (warm-started), MAC, churn, sweep executor and
//! report assembly — is bit-deterministic for a fixed seed, across runs
//! and thread counts. The 5 000-node deployment (above
//! `DENSE_LINK_MAX_NODES`) is pinned by the release-mode `scenario_matrix`
//! bench via `BENCH_2.json`; debug-mode tests stop at 2 000 nodes to keep
//! tier-1 fast.
//!
//! If a PR changes behaviour *intentionally* (protocol feature, RNG
//! stream change, calibration tweak), re-record with:
//! `cargo test --test scenario_golden -- --nocapture print_fingerprints`
//! and update `SMOKE_GOLDEN_FINGERPRINT` in `crates/scenario` for the
//! small scenario.

use dirq::prelude::*;
use dirq::scenario::registry::{self, SMOKE_GOLDEN_FINGERPRINT};

/// Small: the CI smoke preset — 100-node jittered grid, 400 epochs.
fn small() -> ScenarioSpec {
    registry::smoke()
}

/// Medium: 300 nodes at 30 % sensor coverage under ATC, 300 epochs.
fn medium() -> ScenarioSpec {
    registry::hetero_types_300().scaled(0.125)
}

/// Large: the 2 000-node grid deployment, 40 epochs.
fn large() -> ScenarioSpec {
    registry::grid_2000().scaled(0.1)
}

/// Extra-large: the 5 000-node stress deployment at the scaling floor
/// (80 epochs) — the full report pipeline over a >`DENSE_LINK_MAX_NODES`
/// topology, inside tier-1 `cargo test`.
fn xlarge() -> ScenarioSpec {
    registry::stress_5000().scaled(0.1)
}

/// Multi-sink: the 400-node nearest-sink-attachment grid, 300 epochs.
fn multi_sink() -> ScenarioSpec {
    registry::multi_sink_grid_400().scaled(0.25)
}

/// Lossy × churn: shadowed log-distance radio with mid-run deaths,
/// 400 epochs.
fn churn_lossy() -> ScenarioSpec {
    registry::churn_lossy_250().scaled(0.25)
}

/// Redeployment: the staged-births preset, 600 epochs (the birth window
/// scales with the run, so the wave still lands mid-run).
fn redeploy() -> ScenarioSpec {
    registry::redeploy_150().scaled(0.25)
}

/// Golden fingerprint of the [`medium`] sweep report.
const GOLDEN_MEDIUM: u64 = 0xC68601F1512FF70B;

/// Golden fingerprint of the [`large`] sweep report.
const GOLDEN_LARGE: u64 = 0x8357DEAC42925C97;

/// Golden fingerprint of the [`xlarge`] sweep report. The SoA/occupancy
/// hot-path refactor was verified behaviour-preserving against this and
/// the full-budget `BENCH_2.json` registry fingerprints; the edge-aligned
/// neighbour arena + colour-class parallel frame were verified against
/// all of the pins in this file.
const GOLDEN_XLARGE: u64 = 0xC62599E6862F863E;

/// Golden fingerprint of the [`multi_sink`] sweep report.
const GOLDEN_MULTI_SINK: u64 = 0x61136063BF475B80;

/// Golden fingerprint of the [`churn_lossy`] sweep report.
const GOLDEN_CHURN_LOSSY: u64 = 0x0F02F375FECB8B7A;

/// Golden fingerprint of the [`redeploy`] sweep report.
const GOLDEN_REDEPLOY: u64 = 0x3433767E868A6B5B;

fn report_for(spec: ScenarioSpec, threads: usize) -> ScenarioReport {
    run_matrix_report(&[spec], &SweepConfig { threads, ..SweepConfig::default() })
}

#[test]
fn print_fingerprints() {
    // Not an assertion: convenience target for re-recording the constants.
    println!("SMOKE_GOLDEN_FINGERPRINT = {:#018X}", report_for(small(), 1).stable_fingerprint());
    println!("GOLDEN_MEDIUM            = {:#018X}", report_for(medium(), 1).stable_fingerprint());
    println!("GOLDEN_LARGE             = {:#018X}", report_for(large(), 1).stable_fingerprint());
    println!("GOLDEN_XLARGE            = {:#018X}", report_for(xlarge(), 1).stable_fingerprint());
    println!(
        "GOLDEN_MULTI_SINK        = {:#018X}",
        report_for(multi_sink(), 1).stable_fingerprint()
    );
    println!(
        "GOLDEN_CHURN_LOSSY       = {:#018X}",
        report_for(churn_lossy(), 1).stable_fingerprint()
    );
    println!("GOLDEN_REDEPLOY          = {:#018X}", report_for(redeploy(), 1).stable_fingerprint());
}

#[test]
fn small_scenario_matches_golden() {
    assert_eq!(
        report_for(small(), 1).stable_fingerprint(),
        SMOKE_GOLDEN_FINGERPRINT,
        "small scenario drifted from the recorded golden"
    );
}

#[test]
fn medium_scenario_matches_golden() {
    assert_eq!(
        report_for(medium(), 1).stable_fingerprint(),
        GOLDEN_MEDIUM,
        "medium scenario drifted from the recorded golden"
    );
}

#[test]
fn large_scenario_matches_golden() {
    assert_eq!(
        report_for(large(), 1).stable_fingerprint(),
        GOLDEN_LARGE,
        "large (2000-node grid) scenario drifted from the recorded golden"
    );
}

#[test]
fn xlarge_scenario_matches_golden() {
    assert_eq!(
        report_for(xlarge(), 1).stable_fingerprint(),
        GOLDEN_XLARGE,
        "xlarge (5000-node, CSR has_link fallback) scenario drifted from the recorded golden"
    );
}

#[test]
fn multi_sink_scenario_matches_golden() {
    assert_eq!(
        report_for(multi_sink(), 1).stable_fingerprint(),
        GOLDEN_MULTI_SINK,
        "multi-sink scenario drifted from the recorded golden"
    );
}

#[test]
fn churn_lossy_scenario_matches_golden() {
    assert_eq!(
        report_for(churn_lossy(), 1).stable_fingerprint(),
        GOLDEN_CHURN_LOSSY,
        "lossy x churn scenario drifted from the recorded golden"
    );
}

#[test]
fn redeploy_scenario_matches_golden() {
    assert_eq!(
        report_for(redeploy(), 1).stable_fingerprint(),
        GOLDEN_REDEPLOY,
        "redeployment (births) scenario drifted from the recorded golden"
    );
}

#[test]
fn report_identical_across_thread_counts() {
    let sequential = report_for(small(), 1);
    let parallel = report_for(small(), 4);
    assert_eq!(
        sequential.stable_fingerprint(),
        parallel.stable_fingerprint(),
        "sweep parallelism changed the report"
    );
    // And the JSON artifact is byte-identical too.
    assert_eq!(sequential.to_json().render_pretty(), parallel.to_json().render_pretty());
}
