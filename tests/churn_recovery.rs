//! Topology-dynamics integration tests (paper Section 4.2): deaths and
//! post-deployment births flow from the churn plan through LMAC's
//! cross-layer notifications into DirQ's tree and table repair.

use dirq::prelude::*;

#[test]
fn deaths_are_detected_and_queries_keep_working() {
    let r = run_scenario(ScenarioConfig {
        epochs: 2_000,
        measure_from_epoch: 100,
        churn: ChurnSpec::RandomDeaths { deaths: 6, from_epoch: 300, until_epoch: 600 },
        ..ScenarioConfig::paper(20)
    });
    assert!(r.mac_stats.deaths_detected >= 6, "every death must be noticed by some neighbour");
    let late: Vec<f64> =
        r.metrics.outcomes.iter().filter(|o| o.epoch >= 1_000).map(|o| o.source_recall()).collect();
    assert!(!late.is_empty());
    let mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(mean > 0.85, "recall after repair {mean:.3} too low");
}

#[test]
fn born_node_joins_and_becomes_a_source() {
    // Node 42 is offline at deployment and comes online at epoch 300.
    let newcomer = NodeId(42);
    let plan = ChurnPlan::new(vec![(300, ChurnEvent::Birth(newcomer))]);
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 1_200,
        measure_from_epoch: 100,
        tree: TreeKind::Bfs,
        churn: ChurnSpec::Explicit(plan),
        ..ScenarioConfig::paper(21)
    });
    assert!(!engine.is_alive(newcomer));

    // Run past the birth and give LMAC + repair time to integrate it.
    for _ in 0..400 {
        engine.step_epoch();
    }
    assert!(engine.is_alive(newcomer));
    assert!(engine.node(newcomer).parent().is_some(), "newcomer should have attached to the tree");
    let tree = engine.protocol_tree();
    assert!(tree.is_attached(newcomer), "newcomer must be reachable from the root");
    tree.check_invariants().unwrap();
}

#[test]
fn dead_parents_children_reattach() {
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 2_000,
        measure_from_epoch: 100,
        tree: TreeKind::Bfs,
        ..ScenarioConfig::paper(22)
    });
    // Pick a node with children and kill it via an explicit plan restart:
    // easier — find a depth-1 node with children from the protocol tree.
    for _ in 0..50 {
        engine.step_epoch();
    }
    let tree = engine.protocol_tree();
    let victim = tree
        .children(NodeId::ROOT)
        .iter()
        .copied()
        .find(|&c| !tree.children(c).is_empty())
        .expect("some root child has children");
    let orphans: Vec<NodeId> = tree.children(victim).to_vec();

    // Kill it through the same path the churn plan uses.
    let mut cfg_engine = engine; // continue on the same engine
    {
        // Simulate the death by flipping liveness through a fresh plan is
        // not possible mid-run; instead use the public engine surface:
        // drive a new engine whose plan kills the chosen victim.
        let plan = ChurnPlan::new(vec![(60, ChurnEvent::Death(victim))]);
        let mut e2 = Engine::new(ScenarioConfig {
            epochs: 2_000,
            measure_from_epoch: 100,
            tree: TreeKind::Bfs,
            churn: ChurnSpec::Explicit(plan),
            ..ScenarioConfig::paper(22)
        });
        for _ in 0..400 {
            e2.step_epoch();
        }
        let tree2 = e2.protocol_tree();
        assert!(!tree2.is_attached(victim), "dead node must leave the tree");
        for o in orphans {
            assert!(
                tree2.is_attached(o),
                "orphan {o} should have re-attached after its parent died"
            );
            assert_ne!(e2.node(o).parent(), Some(victim));
        }
        tree2.check_invariants().unwrap();
    }
    // Silence the unused-variable path on the original engine.
    cfg_engine.step_epoch();
}

#[test]
fn protocol_tree_stays_valid_under_heavy_churn() {
    let plan = {
        let mut events = Vec::new();
        // Kill 10 nodes at staggered epochs.
        for (i, node) in (5u32..45).step_by(4).enumerate() {
            events.push((200 + i as u64 * 50, ChurnEvent::Death(NodeId(node))));
        }
        ChurnPlan::new(events)
    };
    let mut engine = Engine::new(ScenarioConfig {
        epochs: 1_500,
        measure_from_epoch: 100,
        tree: TreeKind::Bfs,
        churn: ChurnSpec::Explicit(plan),
        ..ScenarioConfig::paper(23)
    });
    for epoch in 0..1_500 {
        engine.step_epoch();
        if epoch % 100 == 0 {
            engine.protocol_tree().check_invariants().unwrap();
        }
    }
    // After all churn settles, every alive node reachable in the radio
    // graph should be attached again.
    let tree = engine.protocol_tree();
    let alive = |n: NodeId| engine.is_alive(n);
    let reachable = engine.topology().reachable_from(NodeId::ROOT, alive);
    for n in engine.topology().nodes() {
        if reachable[n.index()] && engine.is_alive(n) {
            assert!(
                tree.is_attached(n),
                "{n} is alive and radio-reachable but detached from the tree"
            );
        }
    }
}
