//! Differential property tests for the SoA / occupancy-index hot-path
//! refactor.
//!
//! Two independently implemented reference models pin the refactored
//! structures:
//!
//! * [`RefTable`] — a naive `BTreeMap`-backed Range Table with the paper's
//!   Fig. 1–3 semantics written the obvious way. The SoA
//!   `RangeTable` must agree on every observable (aggregate, pending
//!   update/retract, overlap sweep hits *and their order*) after any
//!   operation sequence.
//! * `advance_slot_full_scan_into` — the pre-index MAC slot loop (process
//!   every slot, probe `has_link` per listener × transmitter), kept in
//!   `dirq_lmac` as the reference. A network driven by the indexed fast
//!   path must produce the identical indication stream, statistics and
//!   energy ledgers on arbitrary topologies, traffic and churn.
//!
//! The same full-scan reference also pins the **edge-aligned neighbour
//! arena + colour-class parallel frame**: networks running the sharded
//! listener phase at 1, 2 and 4 workers must be bit-equal to the serial
//! reference on indications, statistics, ledgers, schedules and every
//! per-node neighbour aggregate (`arena_parallel_frames_match_reference`).

use std::collections::BTreeMap;

use dirq::core::{RangeEntry, RangeTable};
use dirq::prelude::*;
use proptest::prelude::*;

// --- Range Table vs naive BTreeMap model --------------------------------

/// The obvious implementation of Section 4.1: one `BTreeMap` of child
/// tuples, aggregates folded in id order.
#[derive(Default)]
struct RefTable {
    own: Option<RangeEntry>,
    children: BTreeMap<NodeId, RangeEntry>,
    last_tx: Option<RangeEntry>,
}

impl RefTable {
    fn observe_own(&mut self, reading: f64, delta: f64) -> bool {
        match &self.own {
            Some(e) if e.contains(reading) => false,
            _ => {
                self.own = Some(RangeEntry::around(reading, delta));
                true
            }
        }
    }

    fn set_child(&mut self, child: NodeId, entry: RangeEntry) -> bool {
        self.children.insert(child, entry) != Some(entry)
    }

    fn remove_child(&mut self, child: NodeId) -> bool {
        self.children.remove(&child).is_some()
    }

    fn aggregate(&self) -> Option<RangeEntry> {
        let mut agg = self.own;
        for e in self.children.values() {
            agg = Some(match agg {
                Some(a) => a.hull(e),
                None => *e,
            });
        }
        agg
    }

    fn pending_update(&self, delta: f64) -> Option<RangeEntry> {
        let agg = self.aggregate()?;
        match &self.last_tx {
            None => Some(agg),
            Some(prev) if agg.differs_significantly(prev, delta) => Some(agg),
            Some(_) => None,
        }
    }

    fn pending_retract(&self) -> bool {
        self.aggregate().is_none() && self.last_tx.is_some()
    }

    fn overlapping(&self, lo: f64, hi: f64) -> Vec<NodeId> {
        self.children.iter().filter(|(_, e)| e.overlaps(lo, hi)).map(|(&c, _)| c).collect()
    }
}

/// One sampled table operation.
fn apply_op(soa: &mut RangeTable, reference: &mut RefTable, op: (u8, u32, f64, f64)) {
    let (kind, id, a, w) = op;
    let child = NodeId(id);
    match kind % 5 {
        0 => {
            let got = soa.observe_own(a, w);
            let want = reference.observe_own(a, w);
            assert_eq!(got, want, "observe_own({a}, {w}) change flag diverged");
        }
        1 => {
            let entry = RangeEntry { min: a, max: a + w };
            let got = soa.set_child(child, entry);
            let want = reference.set_child(child, entry);
            assert_eq!(got, want, "set_child({child}) change flag diverged");
        }
        2 => {
            let got = soa.remove_child(child);
            let want = reference.remove_child(child);
            assert_eq!(got, want, "remove_child({child}) diverged");
        }
        3 => {
            assert_eq!(soa.clear_own(), reference.own.take().is_some(), "clear_own diverged");
        }
        _ => {
            // Transmit whatever is pending, as the protocol would.
            match (soa.pending_update(w), reference.pending_update(w)) {
                (Some(x), Some(y)) => {
                    assert_eq!(x, y, "pending aggregates diverged");
                    soa.mark_transmitted(x);
                    reference.last_tx = Some(y);
                }
                (None, None) => {
                    if soa.pending_retract() {
                        soa.mark_retracted();
                        reference.last_tx = None;
                    }
                }
                (x, y) => panic!("pending_update diverged: soa {x:?} vs reference {y:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// After any operation sequence, the SoA table and the BTreeMap model
    /// agree on aggregate, update/retract pendings and — for arbitrary
    /// query windows — on the overlapping children and their visit order.
    #[test]
    fn range_table_matches_btreemap_model(
        ops in proptest::collection::vec(
            (0u8..8, 0u32..24, -100.0f64..100.0, 0.0f64..10.0), 1..40),
        queries in proptest::collection::vec((-120.0f64..120.0, 0.0f64..60.0), 1..8),
        delta in 0.01f64..5.0,
    ) {
        let mut soa = RangeTable::new();
        let mut reference = RefTable::default();
        for op in ops {
            apply_op(&mut soa, &mut reference, op);

            prop_assert_eq!(soa.aggregate(), reference.aggregate());
            prop_assert_eq!(soa.pending_update(delta), reference.pending_update(delta));
            prop_assert_eq!(soa.pending_retract(), reference.pending_retract());
            prop_assert_eq!(soa.len(), usize::from(reference.own.is_some()) + reference.children.len());
            prop_assert_eq!(soa.is_empty(), reference.own.is_none() && reference.children.is_empty());

            for &(lo, w) in &queries {
                let hi = lo + w;
                let mut hits = Vec::new();
                soa.for_overlapping_children(lo, hi, |c| hits.push(c));
                prop_assert_eq!(
                    hits,
                    reference.overlapping(lo, hi),
                    "overlap sweep diverged for [{}, {}]", lo, hi
                );
            }
        }
        // Per-child lookups agree too.
        for id in 0..24 {
            prop_assert_eq!(
                soa.child_entry(NodeId(id)),
                reference.children.get(&NodeId(id)).copied()
            );
        }
    }
}

// --- MAC occupancy index vs full-scan slot loop --------------------------

/// Build the sampled topology: raw endpoint pairs folded into `n` nodes,
/// self-loops and duplicates dropped.
fn sampled_topology(n: usize, raw_edges: &[(u32, u32)]) -> Topology {
    let mut edges: Vec<(NodeId, NodeId)> = raw_edges
        .iter()
        .map(|&(a, b)| (a as usize % n, b as usize % n))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
        .map(|(a, b)| (NodeId(a as u32), NodeId(b as u32)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    Topology::from_edges(n, &edges)
}

type Net = LmacNetwork<u32>;

fn build_net(topo: &Topology) -> Net {
    // 48 slots always exceed the densest possible 2-hop neighbourhood of a
    // ≤24-node graph, so greedy assignment cannot fail.
    let cfg = LmacConfig { slots_per_frame: 48, ..LmacConfig::default() };
    let mut net = Net::new(cfg, topo.clone());
    net.assign_slots_greedy();
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The occupancy-index fast path and the full-scan reference loop
    /// produce identical indication streams (same nodes, same order),
    /// statistics, ledgers and schedules on arbitrary topologies with
    /// arbitrary unicast/multicast/broadcast traffic and mid-run churn.
    #[test]
    fn occupancy_index_matches_full_scan(
        n in 4usize..24,
        raw_edges in proptest::collection::vec((0u32..64, 0u32..64), 4..60),
        messages in proptest::collection::vec((0u32..64, 0u32..64, 0u8..3), 0..20),
        deaths in proptest::collection::vec(0u32..64, 0..4),
        seed in 0u64..1_000_000,
    ) {
        let topo = sampled_topology(n, &raw_edges);
        let mut fast = build_net(&topo);
        let mut full = build_net(&topo);
        let mut rng_fast = RngFactory::new(seed).stream("mac-differential");
        let mut rng_full = RngFactory::new(seed).stream("mac-differential");

        // Same traffic on both networks.
        for &(from, to, kind) in &messages {
            let from = NodeId((from as usize % n) as u32);
            let to = NodeId((to as usize % n) as u32);
            let dest = match kind {
                0 => Destination::Broadcast,
                1 => Destination::unicast(to),
                _ => Destination::multicast([to, NodeId((to.index() + 1) as u32 % n as u32)]),
            };
            let payload = from.index() as u32 * 1000 + to.index() as u32;
            prop_assert_eq!(
                fast.enqueue(from, dest.clone(), payload),
                full.enqueue(from, dest, payload)
            );
        }

        let slots_per_frame = fast.config().slots_per_frame;
        let mut out_fast: Vec<MacIndication<u32>> = Vec::new();
        let mut out_full: Vec<MacIndication<u32>> = Vec::new();
        for frame in 0..6u32 {
            // Kill (frame 1) and revive (frame 4) the sampled victims so
            // the differential covers deaths, stale detection and re-joins.
            if frame == 1 || frame == 4 {
                let alive = frame == 4;
                for &d in &deaths {
                    let v = NodeId((d as usize % n) as u32);
                    if !v.is_root() {
                        fast.set_alive(v, alive);
                        full.set_alive(v, alive);
                    }
                }
            }
            for _ in 0..slots_per_frame {
                out_fast.clear();
                out_full.clear();
                fast.advance_slot_into(&mut rng_fast, &mut out_fast);
                full.advance_slot_full_scan_into(&mut rng_full, &mut out_full);
                prop_assert_eq!(&out_fast, &out_full, "indication streams diverged");
            }
        }

        prop_assert_eq!(format!("{:?}", fast.stats()), format!("{:?}", full.stats()));
        prop_assert_eq!(
            format!("{:?}", fast.data_ledger()),
            format!("{:?}", full.data_ledger())
        );
        prop_assert_eq!(
            format!("{:?}", fast.control_ledger()),
            format!("{:?}", full.control_ledger())
        );
        for i in 0..n {
            let node = NodeId(i as u32);
            prop_assert_eq!(fast.slot_of(node), full.slot_of(node));
            prop_assert_eq!(fast.is_alive(node), full.is_alive(node));
        }
    }
}

// --- Arena + colour-class parallel frame vs full-scan reference ----------

/// Per-node neighbour-aggregate snapshot, for bit-equality across paths.
fn neighbor_aggregates(net: &Net, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let v = net.neighbor_table(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{}|{:?}|{:?}|{:?}",
                v.nodes().collect::<Vec<_>>(),
                v.len(),
                v.min_gateway_dist(),
                v.one_hop_occupancy(),
                v.two_hop_occupancy(),
                v.stale(1_000_000, 3),
            )
        })
        .collect()
}

fn build_net_with_workers(topo: &Topology, workers: usize) -> Net {
    let cfg = LmacConfig { slots_per_frame: 48, workers: workers.max(1), ..LmacConfig::default() };
    let mut net = Net::new(cfg, topo.clone());
    if workers > 1 {
        // Exercise the sharded listener phase even on 1-core hosts.
        net.force_sharded_listeners();
    }
    net.assign_slots_greedy();
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arena-backed frames at 1, 2 and 4 colour-class workers are
    /// bit-equal to the serial full-scan reference — indication streams
    /// (same nodes, same order), statistics, both energy ledgers,
    /// schedules, liveness and every per-node neighbour aggregate — on
    /// arbitrary topologies with arbitrary traffic and mid-run churn.
    #[test]
    fn arena_parallel_frames_match_reference(
        n in 4usize..24,
        raw_edges in proptest::collection::vec((0u32..64, 0u32..64), 4..60),
        messages in proptest::collection::vec((0u32..64, 0u32..64, 0u8..3), 0..20),
        deaths in proptest::collection::vec(0u32..64, 0..4),
        seed in 0u64..1_000_000,
    ) {
        let topo = sampled_topology(n, &raw_edges);
        let mut reference = build_net(&topo);
        let mut nets: Vec<Net> =
            [1usize, 2, 4].iter().map(|&w| build_net_with_workers(&topo, w)).collect();
        let mut rng_ref = RngFactory::new(seed).stream("mac-differential");
        let mut rngs: Vec<_> =
            (0..nets.len()).map(|_| RngFactory::new(seed).stream("mac-differential")).collect();

        for &(from, to, kind) in &messages {
            let from = NodeId((from as usize % n) as u32);
            let to = NodeId((to as usize % n) as u32);
            let dest = match kind {
                0 => Destination::Broadcast,
                1 => Destination::unicast(to),
                _ => Destination::multicast([to, NodeId((to.index() + 1) as u32 % n as u32)]),
            };
            let payload = from.index() as u32 * 1000 + to.index() as u32;
            reference.enqueue(from, dest.clone(), payload);
            for net in &mut nets {
                net.enqueue(from, dest.clone(), payload);
            }
        }

        let slots_per_frame = reference.config().slots_per_frame;
        let mut out_ref: Vec<MacIndication<u32>> = Vec::new();
        let mut out_net: Vec<MacIndication<u32>> = Vec::new();
        for frame in 0..6u32 {
            if frame == 1 || frame == 4 {
                let alive = frame == 4;
                for &d in &deaths {
                    let v = NodeId((d as usize % n) as u32);
                    if !v.is_root() {
                        reference.set_alive(v, alive);
                        for net in &mut nets {
                            net.set_alive(v, alive);
                        }
                    }
                }
            }
            for _ in 0..slots_per_frame {
                out_ref.clear();
                reference.advance_slot_full_scan_into(&mut rng_ref, &mut out_ref);
                for (i, net) in nets.iter_mut().enumerate() {
                    out_net.clear();
                    net.advance_slot_into(&mut rngs[i], &mut out_net);
                    prop_assert_eq!(&out_net, &out_ref, "indications diverged (net {})", i);
                }
            }
        }

        let ref_aggregates = neighbor_aggregates(&reference, n);
        for (i, net) in nets.iter().enumerate() {
            prop_assert_eq!(
                format!("{:?}", net.stats()),
                format!("{:?}", reference.stats()),
                "stats diverged (net {})", i
            );
            prop_assert_eq!(
                format!("{:?}", net.data_ledger()),
                format!("{:?}", reference.data_ledger())
            );
            prop_assert_eq!(
                format!("{:?}", net.control_ledger()),
                format!("{:?}", reference.control_ledger())
            );
            prop_assert_eq!(
                &neighbor_aggregates(net, n),
                &ref_aggregates,
                "neighbour aggregates diverged (net {})", i
            );
            for j in 0..n {
                let node = NodeId(j as u32);
                prop_assert_eq!(net.slot_of(node), reference.slot_of(node));
                prop_assert_eq!(net.is_alive(node), reference.is_alive(node));
            }
        }
    }
}
