//! Differential property tests for the sharded protocol upkeep.
//!
//! With `upkeep_workers > 1` the per-node upkeep passes shard over the
//! worker pool: sensor sampling runs the real decision path per carrier
//! chunk and replays the shared-state effects in chunk order, and the
//! tree-repair scans (detached-since tracking, orphan candidate
//! selection, the fallback choice) run per node chunk with the adoptions
//! replayed serially under a live cycle re-validate. The serial loops
//! are the reference implementations. 256 sampled cases pin, across
//! churn × adaptive-sampling × multi-sink scenario families:
//!
//! * **sharded ≡ serial** — engines with 2 and 4 forced-sharded upkeep
//!   workers stay bit-equal to the serial reference at every epoch on
//!   the in-flight pending set (which transitively pins the readings
//!   dispatched and the MAC enqueue order feeding later epochs) and on
//!   the per-node upkeep state (parent pointers, children sets,
//!   detached-since tracking, per-sampler taken/skipped counters);
//! * at the end of the run the complete metrics fingerprint and the
//!   full snapshot-state fingerprint match bit for bit.

use dirq::prelude::*;
use proptest::prelude::*;

fn build(cfg: &ScenarioConfig, forced_workers: usize) -> Engine {
    let mut engine = Engine::new(cfg.clone());
    if forced_workers > 1 {
        engine.force_sharded_upkeep(forced_workers);
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Forced-sharded upkeep at 2 and 4 workers is bit-equal to the
    /// serial reference across the churn × sampling × sink families.
    #[test]
    fn sharded_upkeep_matches_serial_reference(
        n in 32usize..64,
        seed in 0u64..1_000_000,
        epochs in 24u64..44,
        churn in 0u8..2,
        predictive in 0u8..2,
        multi_sink in 0u8..2,
    ) {
        let (churn, predictive, multi_sink) = (churn == 1, predictive == 1, multi_sink == 1);
        let cfg = ScenarioConfig {
            n_nodes: n,
            epochs,
            measure_from_epoch: 5,
            query_period: 8,
            completion_window: 10,
            hour_epochs: 16,
            extra_sinks: if multi_sink { 2 } else { 0 },
            // The paper's bounded-random tree can fail to build on small
            // random deployments (and multi-sink forests); the upkeep
            // passes are tree-kind agnostic, so pin BFS for buildability.
            tree: TreeKind::Bfs,
            // Repositioned secondary sinks on the dense paper deployment
            // can exceed the default 32-slot frame's 2-hop degree bound;
            // the frame size is identical across the serial and sharded
            // engines, so it never affects the differential property.
            lmac: LmacConfig { slots_per_frame: 64, ..LmacConfig::default() },
            sampling: if predictive {
                SamplingStrategy::Predictive(PredictiveConfig::default())
            } else {
                SamplingStrategy::EveryEpoch
            },
            churn: if churn {
                // Deaths orphan subtrees, exercising both repair paths
                // (the detach fallback needs long-detached regions, which
                // early deaths plus short runs still produce via the
                // count-to-infinity staleness).
                ChurnSpec::RandomDeaths { deaths: 3, from_epoch: 3, until_epoch: 15 }
            } else {
                ChurnSpec::None
            },
            ..ScenarioConfig::paper(seed)
        };
        let mut reference = build(&cfg, 1);
        let mut sharded: Vec<Engine> = [2usize, 4].iter().map(|&w| build(&cfg, w)).collect();

        for epoch in 0..epochs {
            reference.step_epoch();
            let want_pending = reference.pending_snapshot();
            let want_upkeep = reference.upkeep_snapshot();
            for (i, engine) in sharded.iter_mut().enumerate() {
                engine.step_epoch();
                prop_assert_eq!(
                    &engine.pending_snapshot(),
                    &want_pending,
                    "epoch {}: {}-worker upkeep diverged from serial on the pending set",
                    epoch, [2, 4][i]
                );
                prop_assert_eq!(
                    &engine.upkeep_snapshot(),
                    &want_upkeep,
                    "epoch {}: {}-worker upkeep diverged from serial on node upkeep state",
                    epoch, [2, 4][i]
                );
            }
        }
        let want_metrics = reference.metrics().stable_fingerprint();
        let want_state = reference.state_fingerprint();
        for (i, engine) in sharded.iter().enumerate() {
            prop_assert_eq!(
                engine.metrics().stable_fingerprint(),
                want_metrics,
                "{}-worker upkeep metrics diverged from serial", [2, 4][i]
            );
            prop_assert_eq!(
                engine.state_fingerprint(),
                want_state,
                "{}-worker upkeep final state diverged from serial", [2, 4][i]
            );
        }
    }
}
