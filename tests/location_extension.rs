//! Integration tests for the location extension (the paper's optional
//! *static location attribute*): spatially scoped queries route through
//! advertised subtree bounding boxes.

use dirq::prelude::*;

fn geo_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        epochs: 1_500,
        measure_from_epoch: 300,
        location_enabled: true,
        spatial_query_fraction: 1.0,
        ..ScenarioConfig::paper(seed)
    }
}

#[test]
fn geo_adverts_converge_to_full_coverage() {
    let mut engine = Engine::new(geo_cfg(50));
    for _ in 0..100 {
        engine.step_epoch();
    }
    // The root's geo table must cover every attached node's position.
    let tree = engine.protocol_tree();
    let root_hull =
        engine.node(NodeId::ROOT).geo_table().aggregate().expect("root learned subtree boxes");
    for n in engine.topology().nodes() {
        if tree.is_attached(n) && !n.is_root() {
            assert!(
                root_hull.contains(&engine.topology().position(n)),
                "{n}'s position escapes the root hull"
            );
        }
    }
}

#[test]
fn spatial_queries_reach_their_sources() {
    let r = run_scenario(geo_cfg(51));
    assert!(r.queries_injected > 50);
    let recall = r.metrics.mean_over_queries(|o| o.source_recall()).unwrap();
    assert!(recall > 0.9, "spatial recall {recall:.3} too low");
}

#[test]
fn spatial_scoping_reduces_receptions() {
    // Same workload target; spatial queries should visit no more nodes
    // than value-only queries at the same involvement level, and far fewer
    // than flooding.
    let spatial = run_scenario(geo_cfg(52));
    let flooding = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..geo_cfg(52) });
    let spatial_recv = spatial.metrics.mean_over_queries(|o| o.received as f64).unwrap();
    let flood_recv = flooding.metrics.mean_over_queries(|o| o.received as f64).unwrap();
    assert!(
        spatial_recv < 0.75 * flood_recv,
        "spatial {spatial_recv:.1} vs flooding {flood_recv:.1}"
    );
    assert!(
        spatial.cost_per_query().unwrap() < flooding.cost_per_query().unwrap(),
        "spatial queries must stay cheaper than flooding"
    );
}

#[test]
fn geo_stays_consistent_under_churn() {
    let r = run_scenario(ScenarioConfig {
        churn: ChurnSpec::RandomDeaths { deaths: 5, from_epoch: 400, until_epoch: 700 },
        epochs: 2_000,
        ..geo_cfg(53)
    });
    let late: Vec<f64> =
        r.metrics.outcomes.iter().filter(|o| o.epoch >= 1_200).map(|o| o.source_recall()).collect();
    assert!(!late.is_empty());
    let mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(mean > 0.8, "post-churn spatial recall {mean:.3}");
}

#[test]
fn mixed_workload_supports_both_query_kinds() {
    let mut engine =
        Engine::new(ScenarioConfig { spatial_query_fraction: 0.5, epochs: 2_000, ..geo_cfg(54) });
    for _ in 0..2_000 {
        engine.step_epoch();
    }
    // Dig the query kinds out of the run: with fraction 0.5 and ~95
    // queries, both kinds must appear. (The outcome does not store the
    // region, so assert through the generator's determinism instead: a
    // re-run with fraction 0 has no spatial queries and a different
    // receive profile at 20% involvement would be coincidence.)
    let metrics = engine.metrics();
    assert!(metrics.outcomes.len() > 80);
    let mean_recall = metrics.outcomes.iter().map(|o| o.source_recall()).sum::<f64>()
        / metrics.outcomes.len() as f64;
    assert!(mean_recall > 0.9, "mixed workload recall {mean_recall:.3}");
}

#[test]
#[should_panic(expected = "spatial queries require location_enabled")]
fn spatial_queries_without_location_rejected() {
    let _ = Engine::new(ScenarioConfig {
        location_enabled: false,
        spatial_query_fraction: 0.5,
        ..ScenarioConfig::paper(55)
    });
}
