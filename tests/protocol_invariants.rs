//! Property-based integration tests: protocol invariants that must hold
//! for arbitrary seeds, thresholds and workload mixes.

use dirq::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The protocol tree recovered from per-node state is always a valid
    /// rooted tree, and (without churn) spans every node.
    #[test]
    fn prop_protocol_tree_valid(seed in 0u64..1_000, delta in 2.0f64..12.0) {
        let mut engine = Engine::new(ScenarioConfig {
            epochs: 300,
            measure_from_epoch: 50,
            delta_policy: DeltaPolicy::Fixed(delta),
            ..ScenarioConfig::paper(seed)
        });
        for _ in 0..150 {
            engine.step_epoch();
        }
        let tree = engine.protocol_tree();
        prop_assert!(tree.check_invariants().is_ok());
        prop_assert_eq!(tree.attached_count(), 50);
    }

    /// Per-query accounting identities hold for any configuration.
    #[test]
    fn prop_outcome_identities(
        seed in 0u64..1_000,
        target in 0.15f64..0.65,
        delta in 2.0f64..10.0,
    ) {
        let r = run_scenario(ScenarioConfig {
            epochs: 400,
            measure_from_epoch: 50,
            target_fraction: target,
            delta_policy: DeltaPolicy::Fixed(delta),
            ..ScenarioConfig::paper(seed)
        });
        for o in &r.metrics.outcomes {
            prop_assert_eq!(o.received, o.received_should + o.received_should_not);
            prop_assert!(o.sources_reached <= o.true_sources);
            prop_assert!(o.true_sources <= o.should_receive);
            prop_assert!(o.received <= o.n_nodes);
        }
    }

    /// The MAC schedule stays conflict-free for the whole run: TDMA must
    /// never let two 2-hop neighbours share a slot once converged.
    #[test]
    fn prop_mac_schedule_conflict_free(seed in 0u64..500) {
        let mut engine = Engine::new(ScenarioConfig {
            epochs: 100,
            measure_from_epoch: 10,
            ..ScenarioConfig::paper(seed)
        });
        for _ in 0..100 {
            engine.step_epoch();
        }
        // Reach into the MAC through a fresh instance over the same
        // topology: the engine pre-assigns greedily, which must be
        // conflict-free by construction.
        let mut mac: LmacNetwork<u8> =
            LmacNetwork::new(LmacConfig::default(), engine.topology().clone());
        mac.assign_slots_greedy();
        prop_assert!(mac.schedule_conflicts().is_empty());
    }

    /// Flooding cost per query equals N + 2L for any connected deployment.
    #[test]
    fn prop_flooding_cost_formula(seed in 0u64..500) {
        let r = run_scenario(ScenarioConfig {
            protocol: Protocol::Flooding,
            epochs: 300,
            measure_from_epoch: 50,
            ..ScenarioConfig::paper(seed)
        });
        let expected = r.analytic.n as f64 + 2.0 * r.analytic.links as f64;
        let measured = r.cost_per_query().unwrap();
        let rel = (measured - expected).abs() / expected;
        prop_assert!(rel < 0.02, "measured {} vs N+2L {}", measured, expected);
    }

    /// Determinism: identical configurations yield identical traffic.
    #[test]
    fn prop_determinism(seed in 0u64..300) {
        let cfg = ScenarioConfig {
            epochs: 250,
            measure_from_epoch: 50,
            ..ScenarioConfig::paper(seed)
        };
        let a = run_scenario(cfg.clone());
        let b = run_scenario(cfg);
        prop_assert_eq!(a.metrics.update_cost.tx, b.metrics.update_cost.tx);
        prop_assert_eq!(a.metrics.query_cost.rx, b.metrics.query_cost.rx);
        prop_assert_eq!(a.mac_data_cost, b.mac_data_cost);
    }
}
