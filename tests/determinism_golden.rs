//! Golden determinism tests.
//!
//! The hot-path refactors (zero-copy MAC payloads, CSR topology, scratch
//! buffers) must not change observable behaviour: for a fixed seed the
//! complete metrics of a run are bit-identical. These tests pin the
//! fingerprints of two 64-node scenarios so any behavioural drift fails
//! loudly, and check that the parallel sweep executor returns byte-identical
//! output to sequential execution.
//!
//! If a PR changes behaviour *intentionally* (new protocol feature, RNG
//! stream change), re-record the constants with:
//! `cargo test --test determinism_golden -- --nocapture print_fingerprints`

use dirq::prelude::*;

/// 64-node fixed-δ scenario exercising the steady-state hot path.
fn fixed_delta_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 64,
        epochs: 1_200,
        measure_from_epoch: 200,
        delta_policy: DeltaPolicy::Fixed(5.0),
        ..ScenarioConfig::paper(64_001)
    }
}

/// 64-node ATC scenario with churn, exercising repair, retracts and the
/// EHr/budget loop on top of the same hot path.
fn atc_churn_scenario() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 64,
        epochs: 1_200,
        measure_from_epoch: 200,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        churn: ChurnSpec::RandomDeaths { deaths: 4, from_epoch: 300, until_epoch: 600 },
        ..ScenarioConfig::paper(64_002)
    }
}

/// Short-epoch engine-level pin of a registry preset: the preset's exact
/// deployment/workload at a reduced epoch budget, so the large-topology
/// code paths sit inside tier-1 `cargo test` at debug-mode speed.
fn preset_scenario(name: &str, epochs: u64) -> ScenarioConfig {
    let spec = dirq::scenario::preset(name).expect("registry preset");
    let scheme = spec.schemes[0];
    ScenarioConfig { epochs, measure_from_epoch: epochs / 5, ..spec.config(scheme, spec.seed) }
}

/// 2 000-node jittered grid, 40 epochs (dense link-matrix `has_link`).
fn grid_2000_scenario() -> ScenarioConfig {
    preset_scenario("grid_2000", 40)
}

/// 5 000-node uniform deployment, 24 epochs — above `DENSE_LINK_MAX_NODES`,
/// pinning the CSR-fallback topology path at engine level.
fn stress_5000_scenario() -> ScenarioConfig {
    preset_scenario("stress_5000", 24)
}

/// Golden fingerprint of [`fixed_delta_scenario`], re-recorded for the
/// warm-started query calibration (an intentional behaviour change: the
/// generator draws fewer probe windows per query).
const GOLDEN_FIXED: u64 = 0x15C8852AF51B0F48;

/// Golden fingerprint of [`atc_churn_scenario`], re-recorded for the
/// warm-started query calibration and the kill-order churn sampler.
const GOLDEN_ATC_CHURN: u64 = 0xADF4339F74333A97;

/// Golden fingerprint of [`grid_2000_scenario`]. The SoA node-state /
/// range-table and MAC occupancy-index refactor was verified
/// behaviour-preserving against these large-topology pins and the
/// full-budget `BENCH_2.json` registry fingerprints.
const GOLDEN_GRID_2000: u64 = 0xC5DD94F30570433E;

/// Golden fingerprint of [`stress_5000_scenario`] (recorded with
/// [`GOLDEN_GRID_2000`]).
const GOLDEN_STRESS_5000: u64 = 0x6A938621EF632C0F;

#[test]
fn print_fingerprints() {
    // Not an assertion: convenience target for re-recording the constants.
    println!(
        "GOLDEN_FIXED       = {:#018X}",
        run_scenario(fixed_delta_scenario()).stable_fingerprint()
    );
    println!(
        "GOLDEN_ATC_CHURN   = {:#018X}",
        run_scenario(atc_churn_scenario()).stable_fingerprint()
    );
    println!(
        "GOLDEN_GRID_2000   = {:#018X}",
        run_scenario(grid_2000_scenario()).stable_fingerprint()
    );
    println!(
        "GOLDEN_STRESS_5000 = {:#018X}",
        run_scenario(stress_5000_scenario()).stable_fingerprint()
    );
}

#[test]
fn fixed_delta_metrics_match_golden() {
    let r = run_scenario(fixed_delta_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_FIXED,
        "fixed-seed metrics drifted from the recorded golden run"
    );
}

#[test]
fn atc_churn_metrics_match_golden() {
    let r = run_scenario(atc_churn_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_ATC_CHURN,
        "fixed-seed ATC/churn metrics drifted from the recorded golden run"
    );
}

#[test]
fn grid_2000_metrics_match_golden() {
    let r = run_scenario(grid_2000_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_GRID_2000,
        "fixed-seed 2000-node metrics drifted from the recorded golden run"
    );
}

#[test]
fn stress_5000_metrics_match_golden() {
    let r = run_scenario(stress_5000_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_STRESS_5000,
        "fixed-seed 5000-node (CSR has_link fallback) metrics drifted from the recorded golden run"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_scenario(fixed_delta_scenario());
    let b = run_scenario(fixed_delta_scenario());
    assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
}

#[test]
fn parallel_sweep_output_matches_sequential() {
    // One simulation per parameter point; sequential and 4-way parallel
    // execution must produce byte-identical result vectors.
    let seeds: Vec<u64> = (0..6).collect();
    let run = |&seed: &u64| {
        run_scenario(ScenarioConfig {
            epochs: 400,
            measure_from_epoch: 100,
            ..ScenarioConfig::paper(seed)
        })
        .stable_fingerprint()
    };
    let sequential = dirq::sim::runner::run_sweep(&seeds, 1, run);
    let parallel = dirq::sim::runner::run_sweep(&seeds, 4, run);
    assert_eq!(sequential, parallel, "sweep parallelism changed observable output");
}
