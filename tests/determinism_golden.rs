//! Golden determinism tests (engine-level pins).
//!
//! The hot-path refactors (zero-copy MAC payloads, CSR topology, scratch
//! buffers, SoA state, split-stream world generation) must not change
//! observable behaviour: for a fixed seed the complete metrics of a run
//! are bit-identical. The scenario constructors and recorded fingerprints
//! live in the [`dirq::goldens`] manifest; these tests assert the
//! engine-level pins and that the parallel sweep executor returns
//! byte-identical output to sequential execution.
//!
//! If a PR changes behaviour *intentionally* (new protocol feature, RNG
//! stream change), re-record every pin in one pass:
//! `cargo run --release -p dirq-bench --bin record_goldens`

use dirq::goldens::{
    atc_churn_scenario, fixed_delta_scenario, grid_2000_scenario, stress_5000_scenario,
    GOLDEN_ATC_CHURN, GOLDEN_FIXED, GOLDEN_GRID_2000, GOLDEN_STRESS_5000,
};
use dirq::prelude::*;

#[test]
fn fixed_delta_metrics_match_golden() {
    let r = run_scenario(fixed_delta_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_FIXED,
        "fixed-seed metrics drifted from the recorded golden run"
    );
}

#[test]
fn atc_churn_metrics_match_golden() {
    let r = run_scenario(atc_churn_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_ATC_CHURN,
        "fixed-seed ATC/churn metrics drifted from the recorded golden run"
    );
}

#[test]
fn grid_2000_metrics_match_golden() {
    let r = run_scenario(grid_2000_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_GRID_2000,
        "fixed-seed 2000-node metrics drifted from the recorded golden run"
    );
}

#[test]
fn stress_5000_metrics_match_golden() {
    let r = run_scenario(stress_5000_scenario());
    assert_eq!(
        r.stable_fingerprint(),
        GOLDEN_STRESS_5000,
        "fixed-seed 5000-node (CSR has_link fallback) metrics drifted from the recorded golden run"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_scenario(fixed_delta_scenario());
    let b = run_scenario(fixed_delta_scenario());
    assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
}

#[test]
fn world_workers_do_not_change_metrics() {
    // The world_workers knob must never move an engine fingerprint. At
    // this size (64 nodes, below the world's sharding threshold) the
    // knob resolves to the serial loop — this pins that resolution; the
    // sharded advance itself is pinned bit-equal to serial by the
    // forced-hook cases in tests/world_differential.rs.
    let r = run_scenario(ScenarioConfig { world_workers: 4, ..fixed_delta_scenario() });
    assert_eq!(r.stable_fingerprint(), GOLDEN_FIXED, "world_workers changed observable metrics");
}

#[test]
fn dispatch_workers_do_not_change_metrics() {
    // The dispatch_workers knob must never move an engine fingerprint. At
    // this size (64 nodes, below the dispatch sharding node floor) the
    // knob resolves to the serial drain — this pins that resolution; the
    // sharded dispatch itself is pinned bit-equal to serial by the
    // forced-hook cases in tests/dispatch_differential.rs.
    let r = run_scenario(ScenarioConfig { dispatch_workers: 4, ..fixed_delta_scenario() });
    assert_eq!(r.stable_fingerprint(), GOLDEN_FIXED, "dispatch_workers changed observable metrics");
}

#[test]
fn parallel_sweep_output_matches_sequential() {
    // One simulation per parameter point; sequential and 4-way parallel
    // execution must produce byte-identical result vectors.
    let seeds: Vec<u64> = (0..6).collect();
    let run = |&seed: &u64| {
        run_scenario(ScenarioConfig {
            epochs: 400,
            measure_from_epoch: 100,
            ..ScenarioConfig::paper(seed)
        })
        .stable_fingerprint()
    };
    let sequential = dirq::sim::runner::run_sweep(&seeds, 1, run);
    let parallel = dirq::sim::runner::run_sweep(&seeds, 4, run);
    assert_eq!(sequential, parallel, "sweep parallelism changed observable output");
}
